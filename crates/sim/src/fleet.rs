//! Fleet soak driver: thousands of concurrent seeded drone flights
//! against the real TCP auditor, judged by SLOs over scraped windows.
//!
//! A soak is a staged load campaign. [`run_fleet`] boots one
//! [`AuditorServer`] on a loopback socket (with its live `/metrics`
//! endpoint mounted), registers a fleet of drones, then drives a
//! sequence of [`PhaseSpec`] load phases — ramp, steady state, a
//! barrier-synchronised swarm burst, a chaos-degraded phase with
//! request corruption from [`alidrone_chaos`], and recovery. A
//! GPS-dropout cohort of the fleet (stateless membership via
//! [`FaultPlane::cohort`]) submits a degraded flight record whose PoA
//! carries signed gap markers; the rest submit a clean record.
//!
//! While the phases run, a sampler thread scrapes `/metrics`, parses
//! the exposition text back into [`MetricsSnapshot`]s
//! ([`parse_prometheus_text`]) and feeds a [`SnapshotRing`], over which
//! an [`SloEngine`] raises breach / burn-rate events live. Phase
//! *verdicts*, by contrast, are computed from quiesced phase-boundary
//! scrapes (all workers joined, nothing in flight), so the per-phase
//! counter deltas — and therefore the SLO verdicts — are exactly
//! reproducible for a given seed. Wall-clock-shaped data (window
//! timings, latency quantiles, which per-drone labels won interner
//! slots) is reported but deliberately excluded from the determinism
//! signature.
//!
//! The outcome serialises to a schema-versioned `SOAK_report.json`
//! ([`soak_report_json`]) that [`check_report`] can re-validate from
//! the JSON alone: verdicts present, per-phase request deltas matching
//! the op ledger, windowed series reconciling exactly with the
//! server's final counters, and breach expectations met.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration as StdDuration, Instant};

use alidrone_chaos::{FaultPlane, FaultyGps, FaultyTransport};
use alidrone_core::audit::{verify_consistency, verify_inclusion};
use alidrone_core::journal::{MemBackend, StorageBackend};
use alidrone_core::repl::{Follower, InProcessLink, ReplicationPolicy, Replicator};
use alidrone_core::wire::server::AuditorServer;
use alidrone_core::wire::tcp::{TcpServer, TcpTransport};
use alidrone_core::wire::transport::AuditorClient;
use alidrone_core::{
    run_flight, Auditor, AuditorConfig, DroneId, FlightRecord, ProtocolError, SamplingStrategy,
    ZoneQuery,
};
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::trajectory::TrajectoryBuilder;
use alidrone_geo::{Distance, Duration, GeoPoint, NoFlyZone, Timestamp, ZoneSet};
use alidrone_gps::{SimClock, SimulatedReceiver};
use alidrone_obs::{
    parse_prometheus_text, CounterReconciliation, Json, LabelInterner, MetricsSnapshot, Obs,
    SeriesWindow, Slo, SloEngine, SloEvent, SloRule, SloStatus, SnapshotRing, ToJson,
};
use alidrone_tee::{CostModel, SecureWorldBuilder, GPS_SAMPLER_UUID};

use crate::runner::experiment_key;

/// Version stamp of the `SOAK_report.json` layout. Bump on any
/// breaking change so downstream checkers can refuse unknown layouts.
pub const SOAK_SCHEMA_VERSION: u64 = 1;

/// Server error counters as they appear in a *parsed scrape* (names
/// come back sanitized: dots become underscores, `_total` stripped).
pub const SCRAPED_ERROR_KEYS: [&str; 8] = [
    "server_errors_malformed",
    "server_errors_unknown_drone",
    "server_errors_unknown_zone",
    "server_errors_bad_signature",
    "server_errors_nonce_replayed",
    "server_errors_decrypt_failed",
    "server_errors_internal",
    "server_errors_deadline_expired",
];

/// Shed counters as they appear in a parsed scrape.
pub const SCRAPED_SHED_KEYS: [&str; 3] = [
    "server_shed_expired",
    "server_shed_ratelimited",
    "server_shed_queue_full",
];

/// Scraped name of the total-request counter.
pub const SCRAPED_REQUESTS: &str = "server_requests";

/// One load phase of the soak.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Phase name (stable — shows up in the report and CI asserts).
    pub name: &'static str,
    /// Requests issued per active drone in this phase.
    pub ops_per_drone: u32,
    /// Fraction of the fleet that is active (staged load ramps).
    pub active_fraction: f64,
    /// Request-corruption probability on every client transport
    /// ([`FaultyTransport::corrupt_requests_with`]) — the chaos knob
    /// that makes the *server's* error counters move.
    pub corrupt_requests_p: f64,
    /// When set, workers rendezvous on a barrier before their first
    /// request: the whole phase lands as one swarm burst.
    pub burst: bool,
    /// Whether this phase is expected to breach at least one SLO.
    /// [`check_report`] fails on any mismatch, in either direction.
    pub expect_breach: bool,
}

/// Shape of a fleet soak campaign.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Seed for every fault schedule, cohort draw and request mix.
    pub seed: u64,
    /// Fleet size (drones registered up front).
    pub drones: usize,
    /// Concurrent client worker threads per phase.
    pub clients: usize,
    /// Auditor server worker threads.
    pub server_workers: usize,
    /// Server admission queue capacity. Sized generously by default so
    /// healthy phases never shed — shedding would make verdicts
    /// timing-dependent.
    pub queue_cap: usize,
    /// Sampler scrape period (wall time).
    pub sample_every: StdDuration,
    /// Capacity of the [`SnapshotRing`] fed by the sampler.
    pub ring_cap: usize,
    /// Fraction of the fleet in the GPS-dropout cohort.
    pub gps_dropout_fraction: f64,
    /// Cap on distinct per-drone label series
    /// ([`LabelInterner`] — overflow collapses into `other`).
    pub label_cap: usize,
    /// Run the campaign against a *replicated* primary (journal +
    /// two in-process followers under `Quorum(1)`) and append a
    /// kill-and-promote failover phase after the load phases: the
    /// primary's listener dies, the most-caught-up follower is fenced
    /// and promoted behind a fresh listener, and clients fail over via
    /// the multi-endpoint transport. The phase is machine-checked in
    /// the report like any other, plus a dedicated `failover` section.
    pub failover: bool,
    /// Append a transparency phase after the load phases: a cohort of
    /// clients (one per drone) submits a verdict, then fetches the
    /// signed tree head, an inclusion proof for its own verdict, and a
    /// consistency proof between two successive heads — verifying all
    /// of them **offline** with the `alidrone_core::audit` library.
    /// Every check lands in `fleet.audit_proof_checks` /
    /// `fleet.audit_proof_failures`, the phase is judged like any
    /// other (including the zero-failure `audit_proofs` SLO), and a
    /// dedicated `transparency` section is machine-checked in the
    /// report.
    pub tamper: bool,
    /// The staged load phases, run in order against one server.
    pub phases: Vec<PhaseSpec>,
}

impl FleetConfig {
    /// The default five-phase campaign at `drones` fleet size:
    /// ramp → steady → swarm burst → chaos-degraded → recovery.
    pub fn soak(seed: u64, drones: usize) -> FleetConfig {
        FleetConfig {
            seed,
            drones: drones.max(1),
            clients: 8,
            server_workers: 4,
            queue_cap: 4096,
            sample_every: StdDuration::from_millis(1000),
            ring_cap: 256,
            gps_dropout_fraction: 0.15,
            label_cap: 256,
            failover: false,
            tamper: false,
            phases: default_phases(),
        }
    }

    /// A CI-sized campaign: ~200 drones, sub-minute wall time.
    pub fn smoke(seed: u64) -> FleetConfig {
        FleetConfig {
            clients: 4,
            sample_every: StdDuration::from_millis(400),
            label_cap: 64,
            ..FleetConfig::soak(seed, 200)
        }
    }
}

fn default_phases() -> Vec<PhaseSpec> {
    vec![
        PhaseSpec {
            name: "ramp",
            ops_per_drone: 2,
            active_fraction: 0.25,
            corrupt_requests_p: 0.0,
            burst: false,
            expect_breach: false,
        },
        PhaseSpec {
            name: "steady",
            ops_per_drone: 3,
            active_fraction: 1.0,
            corrupt_requests_p: 0.0,
            burst: false,
            expect_breach: false,
        },
        PhaseSpec {
            name: "burst",
            ops_per_drone: 2,
            active_fraction: 1.0,
            corrupt_requests_p: 0.0,
            burst: true,
            expect_breach: false,
        },
        PhaseSpec {
            name: "degraded",
            ops_per_drone: 3,
            active_fraction: 1.0,
            corrupt_requests_p: 0.35,
            burst: false,
            expect_breach: true,
        },
        PhaseSpec {
            name: "recovery",
            ops_per_drone: 2,
            active_fraction: 1.0,
            corrupt_requests_p: 0.0,
            burst: false,
            expect_breach: false,
        },
    ]
}

/// The SLO set a fleet soak is judged by. Rules reference *scraped*
/// (sanitized) counter names because they evaluate over windows built
/// from parsed `/metrics` text, not the in-process registry.
pub fn fleet_slos() -> Vec<Slo> {
    let bad: Vec<String> = SCRAPED_ERROR_KEYS.iter().map(|s| (*s).into()).collect();
    vec![
        Slo::new(
            "availability",
            SloRule::Availability {
                total: SCRAPED_REQUESTS.into(),
                bad: bad.clone(),
                min_ratio: 0.99,
            },
        ),
        Slo::new(
            "shed_ratio",
            SloRule::MaxRatio {
                num: SCRAPED_SHED_KEYS.iter().map(|s| (*s).into()).collect(),
                den: SCRAPED_REQUESTS.into(),
                max_ratio: 0.05,
            },
        ),
        Slo::new(
            "submit_p99",
            SloRule::P99Below {
                histogram: "server_latency_submit_poa".into(),
                max_micros: 2_000_000.0,
            },
        ),
        Slo::new(
            "error_burn",
            SloRule::BurnRate {
                total: SCRAPED_REQUESTS.into(),
                bad,
                target: 0.99,
                fast_windows: 2,
                slow_windows: 6,
                max_burn: 5.0,
            },
        ),
        // Replication-lag levels must be exactly zero on a quiesced
        // boundary scrape. Absent gauges (non-replicated soaks) read
        // as zero, so these rules are unconditional.
        Slo::new(
            "repl_lag_bytes",
            SloRule::GaugeBelow {
                gauge: "repl_lag_bytes".into(),
                max: 0,
            },
        ),
        Slo::new(
            "repl_lag_records",
            SloRule::GaugeBelow {
                gauge: "repl_lag_records".into(),
                max: 0,
            },
        ),
        // Audit-transparency integrity: not one offline proof
        // verification may fail, ever. Zero checks (non-tamper soaks)
        // reads healthy, so the rule is unconditional.
        Slo::new(
            "audit_proofs",
            SloRule::MaxRatio {
                num: vec!["fleet_audit_proof_failures".into()],
                den: "fleet_audit_proof_checks".into(),
                max_ratio: 0.0,
            },
        ),
    ]
}

/// What one phase did and how it was judged.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name from the spec.
    pub name: &'static str,
    /// The spec's breach expectation, echoed for the report checker.
    pub expect_breach: bool,
    /// Whether any SLO verdict came back unhealthy.
    pub breached: bool,
    /// Requests the op ledger says this phase issued.
    pub ops: u64,
    /// `server_requests` delta across the phase's quiesced boundary
    /// scrapes. Must equal `ops`: every op is exactly one frame.
    pub requests_delta: u64,
    /// Sum of all `server_errors_*` deltas across the phase.
    pub errors_delta: u64,
    /// Sum of all `server_shed_*` deltas across the phase.
    pub shed_delta: u64,
    /// Phase window bounds (wall seconds; informational only).
    pub start_secs: f64,
    /// See `start_secs`.
    pub end_secs: f64,
    /// Per-SLO verdicts over the phase window.
    pub verdicts: Vec<SloStatus>,
}

impl ToJson for PhaseOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name)),
            ("expect_breach", Json::Bool(self.expect_breach)),
            ("breached", Json::Bool(self.breached)),
            ("ops", Json::Num(self.ops as f64)),
            ("requests_delta", Json::Num(self.requests_delta as f64)),
            ("errors_delta", Json::Num(self.errors_delta as f64)),
            ("shed_delta", Json::Num(self.shed_delta as f64)),
            ("start_secs", Json::Num(self.start_secs)),
            ("end_secs", Json::Num(self.end_secs)),
            (
                "verdicts",
                Json::arr(self.verdicts.iter().map(ToJson::to_json)),
            ),
        ])
    }
}

/// What the kill-and-promote phase of a replicated soak did.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Leadership epoch while the original primary served.
    pub epoch_before: u64,
    /// Epoch after promotion (must be `epoch_before + 1`).
    pub epoch_after: u64,
    /// Name of the follower that won promotion (highest acked offset).
    pub promoted_follower: String,
    /// Journal records the promoted follower replayed on recovery.
    pub records_replayed: u64,
    /// Requests issued against the original primary in this phase.
    pub pre_kill_ops: u64,
    /// Requests issued after the kill (served by the promoted
    /// primary, reached via endpoint rotation).
    pub post_kill_ops: u64,
    /// `transport.endpoint_rotations` at campaign end: connections
    /// that rotated off the dead primary's refused endpoint.
    pub endpoint_rotations: u64,
    /// `repl.failovers` at campaign end (exactly one).
    pub failovers: u64,
}

impl ToJson for FailoverOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epoch_before", Json::Num(self.epoch_before as f64)),
            ("epoch_after", Json::Num(self.epoch_after as f64)),
            ("promoted_follower", Json::str(&self.promoted_follower)),
            ("records_replayed", Json::Num(self.records_replayed as f64)),
            ("pre_kill_ops", Json::Num(self.pre_kill_ops as f64)),
            ("post_kill_ops", Json::Num(self.post_kill_ops as f64)),
            (
                "endpoint_rotations",
                Json::Num(self.endpoint_rotations as f64),
            ),
            ("failovers", Json::Num(self.failovers as f64)),
        ])
    }
}

/// What the transparency phase of a tamper-mode soak verified: every
/// proof fetched over the wire, checked **offline** against nothing but
/// the auditor's public key.
#[derive(Debug, Clone)]
pub struct TransparencyOutcome {
    /// Signed tree size before the cohort submitted its verdicts.
    pub tree_size_before: u64,
    /// Signed tree size after — must have advanced by at least one
    /// audited record per drone.
    pub tree_size_after: u64,
    /// Offline verifications attempted (tree-head signatures,
    /// inclusion proofs, consistency proofs).
    pub proof_checks: u64,
    /// Verifications that failed. Any non-zero value is a soak
    /// failure: either the log was tampered with or the proof pipeline
    /// is broken.
    pub proof_failures: u64,
}

impl ToJson for TransparencyOutcome {
    fn to_json(&self) -> Json {
        Json::obj([
            ("tree_size_before", Json::Num(self.tree_size_before as f64)),
            ("tree_size_after", Json::Num(self.tree_size_after as f64)),
            ("proof_checks", Json::Num(self.proof_checks as f64)),
            ("proof_failures", Json::Num(self.proof_failures as f64)),
        ])
    }
}

/// Everything a finished soak produced.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The campaign seed.
    pub seed: u64,
    /// Fleet size.
    pub drones: usize,
    /// Client worker threads per phase.
    pub clients: usize,
    /// Per-phase ledgers and verdicts, in execution order.
    pub phases: Vec<PhaseOutcome>,
    /// The sampler's windowed time-series (plus phase boundaries).
    pub ring: SnapshotRing,
    /// Live SLO transitions raised while the campaign ran.
    pub slo_events: Vec<SloEvent>,
    /// Per-counter accounting: series totals vs final scrape.
    pub reconciliation: Vec<CounterReconciliation>,
    /// Total requests issued by the op ledger.
    pub total_ops: u64,
    /// Client-visible typed errors (corrupted frames bounced by the
    /// server come back as typed error responses).
    pub client_errors: u64,
    /// Distinct per-drone label series admitted by the interner.
    pub labels_admitted: usize,
    /// Interns that overflowed into the `other` series.
    pub labels_dropped: u64,
    /// The interner's cap.
    pub label_cap: usize,
    /// Whether the final scrape agreed with the server registry read
    /// directly (sanitized-name comparison on the request/error
    /// counters) — the scrape pipeline's own integrity check.
    pub scrape_matches_registry: bool,
    /// The kill-and-promote ledger when [`FleetConfig::failover`] was
    /// set; `None` for non-replicated soaks.
    pub failover: Option<FailoverOutcome>,
    /// The proof-verification ledger when [`FleetConfig::tamper`] was
    /// set; `None` otherwise.
    pub transparency: Option<TransparencyOutcome>,
}

// ------------------------------------------------------------ helpers

/// Infallible constructor for the fleet's fixed, known-valid points.
fn pt(lat: f64, lon: f64) -> GeoPoint {
    GeoPoint::new(lat, lon).expect("valid fleet coordinates")
}

/// Stateless splitmix-style mix used for the request-kind schedule and
/// query nonces: pure in (key, n), so workers need no shared RNG.
fn mix64(key: u64, n: u64) -> u64 {
    let mut z = key ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal HTTP/1.1 GET returning the response body.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body split in scrape response",
        )),
    }
}

/// Scrapes `/metrics` and parses the text back into a snapshot —
/// the same path any external monitor would take.
fn scrape_snapshot(addr: SocketAddr) -> std::io::Result<MetricsSnapshot> {
    Ok(parse_prometheus_text(&http_get(addr, "/metrics")?))
}

/// A hover flight record signed by the shared experiment TEE key;
/// `degraded` routes the receiver through [`FaultyGps`] dropout
/// windows so the PoA carries signed gap markers.
fn make_record(plane: &FaultPlane, degraded: bool) -> FlightRecord {
    let clock = SimClock::new();
    let route = TrajectoryBuilder::start_at(pt(40.0, -88.0))
        .pause(Duration::from_secs(60.0))
        .build()
        .expect("hover trajectory");
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let strategy = SamplingStrategy::FixedRate(1.0);
    let duration = Duration::from_secs(20.0);
    if degraded {
        let faulty = Arc::new(
            FaultyGps::new(Arc::clone(&receiver), plane, "fleet.gps").dropout_windows(0.08, 8),
        );
        let world = SecureWorldBuilder::new()
            .with_sign_key(experiment_key())
            .with_gps_device(Box::new(Arc::clone(&faulty)))
            .with_cost_model(CostModel::free())
            .build()
            .expect("tee world");
        let tee = world.client();
        let session = tee.open_session(GPS_SAMPLER_UUID).expect("session");
        run_flight(
            &clock,
            faulty.as_ref(),
            &session,
            &ZoneSet::new(),
            strategy,
            duration,
        )
        .expect("degraded flight")
    } else {
        let world = SecureWorldBuilder::new()
            .with_sign_key(experiment_key())
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .with_cost_model(CostModel::free())
            .build()
            .expect("tee world");
        let tee = world.client();
        let session = tee.open_session(GPS_SAMPLER_UUID).expect("session");
        run_flight(
            &clock,
            receiver.as_ref(),
            &session,
            &ZoneSet::new(),
            strategy,
            duration,
        )
        .expect("healthy flight")
    }
}

/// Sampler/engine state shared between the sampler thread and the
/// phase-boundary observations on the driver thread.
struct SoakState {
    ring: SnapshotRing,
    engine: SloEngine,
    events: Vec<SloEvent>,
}

/// Scrape, feed the ring, run the live SLO evaluation. Returns the
/// (time, snapshot) pair for phase-window bookkeeping.
fn observe_scrape(
    state: &Mutex<SoakState>,
    obs: &Obs,
    addr: SocketAddr,
) -> (Timestamp, MetricsSnapshot) {
    let snap = scrape_snapshot(addr).expect("scrape endpoint");
    let t = obs.now();
    let mut guard = state.lock().expect("soak state");
    let SoakState {
        ring,
        engine,
        events,
    } = &mut *guard;
    ring.observe(t, snap.clone());
    events.extend(engine.evaluate(ring));
    (t, snap)
}

// ----------------------------------------------------------- campaign

/// Runs the whole soak campaign and returns its outcome.
///
/// # Panics
///
/// Panics when the loopback server cannot be bound, a flight record
/// cannot be produced, or the scrape endpoint disappears — a soak with
/// a broken harness must fail loudly, not report vacuous health.
#[allow(clippy::too_many_lines)]
pub fn run_fleet(cfg: &FleetConfig) -> SoakOutcome {
    let plane = FaultPlane::new(cfg.seed);
    let now = Timestamp::from_secs(600.0);

    // Two canonical flight records shared by the fleet: every drone is
    // registered under the same operator/TEE keypair, so the records
    // verify for all of them. The GPS-dropout cohort files the
    // degraded record (declared gaps), the rest the clean one.
    let healthy = Arc::new(make_record(&plane, false));
    let degraded = Arc::new(make_record(&plane, true));
    let gps_cohort = plane.cohort("fleet.gps_dropout", cfg.gps_dropout_fraction);

    let obs = Obs::wall();
    let operator_key: RsaPrivateKey = experiment_key();
    // Replicated mode journals the primary and ships every record to
    // two in-process followers under Quorum(1); the follower handles
    // stay with the driver for the kill-and-promote phase.
    let (auditor, repl_followers) = if cfg.failover {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let (auditor, _) =
            Auditor::recover_with_obs(backend, AuditorConfig::default(), experiment_key(), &obs)
                .expect("journaled primary recovers");
        let followers: Vec<(String, Arc<Follower>)> = (0..2)
            .map(|i| {
                let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
                (format!("f{i}"), Arc::new(Follower::new(backend)))
            })
            .collect();
        let mut replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1));
        for (name, follower) in &followers {
            replicator =
                replicator.with_follower(name.clone(), InProcessLink::new(Arc::clone(follower)));
        }
        auditor.set_replicator(Arc::new(replicator));
        auditor.begin_epoch(1).expect("epoch 1 replicates");
        (auditor, Some(followers))
    } else {
        (
            Auditor::with_obs(AuditorConfig::default(), experiment_key(), &obs),
            None,
        )
    };
    // The scrape endpoint is owned by the `AuditorServer`, so holding
    // this Arc keeps `/metrics` alive across the failover phase even
    // after the request listener is shut down.
    let server = Arc::new(
        AuditorServer::builder(auditor)
            .obs(&obs)
            .workers(cfg.server_workers)
            .queue_cap(cfg.queue_cap)
            .scrape(SocketAddr::from(([127, 0, 0, 1], 0)))
            .build(),
    );
    let scrape_addr = server.scrape_addr().expect("scrape endpoint mounted");
    let mut listener = Some(
        TcpServer::bind(("127.0.0.1", 0), Arc::clone(&server)).expect("bind auditor listener"),
    );
    let addr = listener.as_ref().expect("listener just bound").local_addr();

    // Registration (setup traffic, lands before the phase-0 baseline
    // scrape so it never pollutes a phase window).
    let tee_public = {
        let world = SecureWorldBuilder::new()
            .with_sign_key(experiment_key())
            .with_cost_model(CostModel::free())
            .build()
            .expect("tee world");
        world.client().tee_public_key()
    };
    let mut setup = AuditorClient::new(TcpTransport::new(addr));
    let drone_ids: Vec<DroneId> = (0..cfg.drones)
        .map(|_| {
            setup
                .register_drone(operator_key.public_key().clone(), tee_public.clone(), now)
                .expect("register drone")
        })
        .collect();
    setup
        .register_zone(
            NoFlyZone::new(pt(40.05, -88.0), Distance::from_meters(500.0)),
            now,
        )
        .expect("register zone");

    let interner = LabelInterner::new(&obs, cfg.label_cap);
    let ops_counter = obs.counter("fleet.ops");
    let err_counter = obs.counter("fleet.client_errors");

    let state = Arc::new(Mutex::new(SoakState {
        ring: SnapshotRing::new(cfg.ring_cap),
        engine: SloEngine::new(&obs, fleet_slos()),
        events: Vec::new(),
    }));

    // Background sampler: the live monitoring path. Its windows feed
    // burn-rate alerting and the report's series; determinism-checked
    // verdicts come from the quiesced boundary scrapes instead.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let obs = obs.clone();
        let period = cfg.sample_every;
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(period);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let (_t, _snap) = observe_scrape(&state, &obs, scrape_addr);
            }
        })
    };

    // Baseline boundary after setup, before any phase traffic.
    let (mut t_prev, mut snap_prev) = observe_scrape(&state, &obs, scrape_addr);

    let kind_key = cfg.seed ^ 0xF1EE_7001;
    let mut phases = Vec::with_capacity(cfg.phases.len());
    let mut total_ops = 0u64;

    for (pi, phase) in cfg.phases.iter().enumerate() {
        let active = ((cfg.drones as f64) * phase.active_fraction).round() as usize;
        let active = active.clamp(1, cfg.drones);
        let chunk = active.div_ceil(cfg.clients.max(1));
        let barrier = Barrier::new(cfg.clients.max(1));

        thread::scope(|s| {
            for w in 0..cfg.clients.max(1) {
                let lo = (w * chunk).min(active);
                let hi = (lo + chunk).min(active);
                let drone_ids = &drone_ids;
                let healthy = &healthy;
                let degraded = &degraded;
                let interner = &interner;
                let obs = &obs;
                let operator_key = &operator_key;
                let ops_counter = Arc::clone(&ops_counter);
                let err_counter = Arc::clone(&err_counter);
                let barrier = &barrier;
                s.spawn(move || {
                    let transport = FaultyTransport::new(
                        TcpTransport::new(addr),
                        &plane,
                        &format!("fleet.p{pi}.w{w}"),
                    )
                    .corrupt_requests_with(phase.corrupt_requests_p);
                    let mut client = AuditorClient::new(transport);
                    if phase.burst {
                        barrier.wait();
                    }
                    for (i, &drone) in drone_ids.iter().enumerate().take(hi).skip(lo) {
                        let record: &FlightRecord = if gps_cohort.contains(i as u64) {
                            degraded
                        } else {
                            healthy
                        };
                        let label = interner.intern(&format!("d{i}"));
                        let drone_ops = obs.counter(&format!("fleet.drone.{label}.ops"));
                        for j in 0..u64::from(phase.ops_per_drone) {
                            let slot = ((pi as u64) << 40) | ((i as u64) << 16) | j;
                            let outcome: Result<(), ProtocolError> =
                                match mix64(kind_key, slot) % 10 {
                                    0..=4 => client
                                        .submit_poa(
                                            drone,
                                            (record.window_start, record.window_end),
                                            &record.poa,
                                            now,
                                        )
                                        .map(|_| ()),
                                    5..=7 => client.health_check(now).map(|_| ()),
                                    _ => {
                                        let mut nonce = [0u8; 16];
                                        nonce[..8].copy_from_slice(
                                            &mix64(kind_key, slot ^ 0xA5A5).to_le_bytes(),
                                        );
                                        nonce[8..].copy_from_slice(
                                            &mix64(kind_key, slot ^ 0x5A5A).to_le_bytes(),
                                        );
                                        ZoneQuery::new_signed(
                                            drone,
                                            pt(39.99, -88.01),
                                            pt(40.01, -87.99),
                                            nonce,
                                            operator_key,
                                        )
                                        .and_then(|q| client.query_zones(q, now).map(|_| ()))
                                    }
                                };
                            ops_counter.inc();
                            drone_ops.inc();
                            if outcome.is_err() {
                                err_counter.inc();
                            }
                        }
                    }
                });
            }
        });

        // Quiesced boundary: every worker joined, so the scrape sees
        // the phase's exact final counters.
        let (t_end, snap_end) = observe_scrape(&state, &obs, scrape_addr);
        let window = SeriesWindow::between(t_prev, &snap_prev, t_end, &snap_end);
        let verdicts = state
            .lock()
            .expect("soak state")
            .engine
            .verdicts_for(&window);
        let breached = verdicts.iter().any(|v| !v.healthy);
        let ops = (active as u64) * u64::from(phase.ops_per_drone);
        total_ops += ops;
        phases.push(PhaseOutcome {
            name: phase.name,
            expect_breach: phase.expect_breach,
            breached,
            ops,
            requests_delta: window.counter_delta(SCRAPED_REQUESTS),
            errors_delta: window.counter_sum(SCRAPED_ERROR_KEYS),
            shed_delta: window.counter_sum(SCRAPED_SHED_KEYS),
            start_secs: t_prev.secs(),
            end_secs: t_end.secs(),
            verdicts,
        });
        t_prev = t_end;
        snap_prev = snap_end;
    }

    // --------------------------------------------- transparency phase
    // Tamper mode: every drone submits one more verdict, then acts as
    // its own third-party auditor — fetch the signed tree head, an
    // inclusion proof for its own verdict, a second head, and a
    // consistency proof between the two, verifying all of them with
    // the offline `alidrone_core::audit` library. Runs before the
    // failover phase so the primary listener is still serving.
    let transparency = cfg.tamper.then(|| {
        let checks_counter = obs.counter("fleet.audit_proof_checks");
        let failures_counter = obs.counter("fleet.audit_proof_failures");
        let issued = AtomicU64::new(0);
        let auditor_public = operator_key.public_key().clone();

        // Baseline head on the driver, before any cohort traffic.
        issued.fetch_add(1, Ordering::Relaxed);
        ops_counter.inc();
        let head0 = setup.fetch_tree_head(now).expect("baseline tree head");
        checks_counter.inc();
        if !head0.verify(&auditor_public) {
            failures_counter.inc();
        }

        let chunk = cfg.drones.div_ceil(cfg.clients.max(1));
        thread::scope(|s| {
            for w in 0..cfg.clients.max(1) {
                let lo = (w * chunk).min(cfg.drones);
                let hi = (lo + chunk).min(cfg.drones);
                let drone_ids = &drone_ids;
                let healthy = &healthy;
                let degraded = &degraded;
                let gps_cohort = &gps_cohort;
                let interner = &interner;
                let obs = &obs;
                let auditor_public = &auditor_public;
                let checks_counter = Arc::clone(&checks_counter);
                let failures_counter = Arc::clone(&failures_counter);
                let ops_counter = Arc::clone(&ops_counter);
                let err_counter = Arc::clone(&err_counter);
                let issued = &issued;
                s.spawn(move || {
                    let mut client = AuditorClient::new(TcpTransport::new(addr));
                    for (i, &drone) in drone_ids.iter().enumerate().take(hi).skip(lo) {
                        let record: &FlightRecord = if gps_cohort.contains(i as u64) {
                            degraded
                        } else {
                            healthy
                        };
                        let label = interner.intern(&format!("d{i}"));
                        let drone_ops = obs.counter(&format!("fleet.drone.{label}.ops"));
                        let request = || {
                            issued.fetch_add(1, Ordering::Relaxed);
                            ops_counter.inc();
                            drone_ops.inc();
                        };

                        // Own verdict first: guarantees a leaf to prove.
                        request();
                        if client
                            .submit_poa(
                                drone,
                                (record.window_start, record.window_end),
                                &record.poa,
                                now,
                            )
                            .is_err()
                        {
                            err_counter.inc();
                            continue;
                        }

                        request();
                        let sth = match client.fetch_tree_head(now) {
                            Ok(s) => s,
                            Err(_) => {
                                err_counter.inc();
                                continue;
                            }
                        };
                        checks_counter.inc();
                        if !sth.verify(auditor_public) {
                            failures_counter.inc();
                        }

                        // Inclusion of this drone's verdict, pinned at
                        // the verified head — other workers keep
                        // appending, so "current size" would race.
                        request();
                        match client.fetch_inclusion_proof(drone, sth.size, now) {
                            Ok(p) => {
                                checks_counter.inc();
                                let ok = p.size == sth.size
                                    && verify_inclusion(
                                        &p.leaf, p.index, p.size, &p.path, &sth.root,
                                    );
                                if !ok {
                                    failures_counter.inc();
                                }
                            }
                            Err(_) => err_counter.inc(),
                        }

                        request();
                        let sth2 = match client.fetch_tree_head(now) {
                            Ok(s) => s,
                            Err(_) => {
                                err_counter.inc();
                                continue;
                            }
                        };
                        checks_counter.inc();
                        if !(sth2.verify(auditor_public) && sth2.size >= sth.size) {
                            failures_counter.inc();
                        }

                        request();
                        match client.fetch_consistency_proof(sth.size, sth2.size, now) {
                            Ok(c) => {
                                checks_counter.inc();
                                let ok = c.old_size == sth.size
                                    && c.new_size == sth2.size
                                    && verify_consistency(
                                        c.old_size, c.new_size, &c.path, &sth.root, &sth2.root,
                                    );
                                if !ok {
                                    failures_counter.inc();
                                }
                            }
                            Err(_) => err_counter.inc(),
                        }
                    }
                });
            }
        });

        // Final head on the driver: the whole phase must be consistent
        // with the baseline — append-only, nothing rewritten.
        issued.fetch_add(1, Ordering::Relaxed);
        ops_counter.inc();
        let head1 = setup.fetch_tree_head(now).expect("final tree head");
        checks_counter.inc();
        if !head1.verify(&auditor_public) {
            failures_counter.inc();
        }
        issued.fetch_add(1, Ordering::Relaxed);
        ops_counter.inc();
        let cons = setup
            .fetch_consistency_proof(head0.size, head1.size, now)
            .expect("baseline-to-final consistency proof");
        checks_counter.inc();
        if !(cons.old_size == head0.size
            && cons.new_size == head1.size
            && verify_consistency(head0.size, head1.size, &cons.path, &head0.root, &head1.root))
        {
            failures_counter.inc();
        }

        // Quiesced boundary: judge the phase like any other, including
        // the zero-failure audit_proofs SLO.
        let (t_end, snap_end) = observe_scrape(&state, &obs, scrape_addr);
        let window = SeriesWindow::between(t_prev, &snap_prev, t_end, &snap_end);
        let verdicts = state
            .lock()
            .expect("soak state")
            .engine
            .verdicts_for(&window);
        let breached = verdicts.iter().any(|v| !v.healthy);
        let ops = issued.load(Ordering::Relaxed);
        total_ops += ops;
        phases.push(PhaseOutcome {
            name: "transparency",
            expect_breach: false,
            breached,
            ops,
            requests_delta: window.counter_delta(SCRAPED_REQUESTS),
            errors_delta: window.counter_sum(SCRAPED_ERROR_KEYS),
            shed_delta: window.counter_sum(SCRAPED_SHED_KEYS),
            start_secs: t_prev.secs(),
            end_secs: t_end.secs(),
            verdicts,
        });
        t_prev = t_end;
        snap_prev = snap_end;

        TransparencyOutcome {
            tree_size_before: head0.size,
            tree_size_after: head1.size,
            proof_checks: checks_counter.get(),
            proof_failures: failures_counter.get(),
        }
    });

    // ------------------------------------------- kill-and-promote phase
    let mut listener_b: Option<TcpServer> = None;
    let mut server_b: Option<Arc<AuditorServer>> = None;
    let failover = repl_followers.map(|followers| {
        // One request per drone through a given endpoint list; the ops
        // land in the shared ledger/counters like any phase traffic.
        let drive = |endpoints: Vec<SocketAddr>| -> u64 {
            let chunk = cfg.drones.div_ceil(cfg.clients.max(1));
            thread::scope(|s| {
                for w in 0..cfg.clients.max(1) {
                    let lo = (w * chunk).min(cfg.drones);
                    let hi = (lo + chunk).min(cfg.drones);
                    let endpoints = endpoints.clone();
                    let drone_ids = &drone_ids;
                    let healthy = &healthy;
                    let degraded = &degraded;
                    let gps_cohort = &gps_cohort;
                    let interner = &interner;
                    let obs = &obs;
                    let ops_counter = Arc::clone(&ops_counter);
                    let err_counter = Arc::clone(&err_counter);
                    s.spawn(move || {
                        let mut client = AuditorClient::new(TcpTransport::multi(endpoints, obs));
                        for (i, &drone) in drone_ids.iter().enumerate().take(hi).skip(lo) {
                            let record: &FlightRecord = if gps_cohort.contains(i as u64) {
                                degraded
                            } else {
                                healthy
                            };
                            let label = interner.intern(&format!("d{i}"));
                            let drone_ops = obs.counter(&format!("fleet.drone.{label}.ops"));
                            let outcome = client.submit_poa(
                                drone,
                                (record.window_start, record.window_end),
                                &record.poa,
                                now,
                            );
                            ops_counter.inc();
                            drone_ops.inc();
                            if outcome.is_err() {
                                err_counter.inc();
                            }
                        }
                    });
                }
            });
            cfg.drones as u64
        };

        // Normal traffic against the primary, then fail-stop: shut its
        // listener so every new connection is refused.
        let pre_kill_ops = drive(vec![addr]);
        listener
            .take()
            .expect("primary listener alive until the kill")
            .shutdown();
        let t0 = Instant::now();

        // Deterministic promotion: fence the most-caught-up follower
        // first, then finish replaying its shipped log.
        let promote_idx = (0..followers.len())
            .max_by_key(|&i| followers[i].1.acked_offset())
            .expect("replicated soak has followers");
        let (promoted_name, promoted_follower) = &followers[promote_idx];
        promoted_follower.fence(2);
        let (promoted, report) = Auditor::recover_with_obs(
            Arc::clone(promoted_follower.backend()),
            AuditorConfig::default(),
            experiment_key(),
            &obs,
        )
        .expect("promotion replay");
        let (survivor_name, survivor) = &followers[1 - promote_idx];
        let new_replicator = Replicator::new(&obs, ReplicationPolicy::Quorum(1)).with_follower(
            survivor_name.clone(),
            InProcessLink::new(Arc::clone(survivor)),
        );
        promoted.set_replicator(Arc::new(new_replicator));
        promoted.begin_epoch(2).expect("epoch 2 replicates");
        let epoch_after = promoted.current_epoch();
        let b = Arc::new(
            AuditorServer::builder(promoted)
                .obs(&obs)
                .workers(cfg.server_workers)
                .queue_cap(cfg.queue_cap)
                .build(),
        );
        let lb = TcpServer::bind(("127.0.0.1", 0), Arc::clone(&b)).expect("bind promoted listener");
        let addr_b = lb.local_addr();
        obs.histogram("repl.failover_duration_us")
            .record_micros(t0.elapsed().as_micros() as u64);
        obs.counter("repl.failovers").inc();
        server_b = Some(b);
        listener_b = Some(lb);

        // Post-kill traffic: the endpoint list still leads with the
        // dead primary, so every fresh connection exercises the
        // refused-endpoint rotation before landing on the promoted one.
        let post_kill_ops = drive(vec![addr, addr_b]);

        // Quiesced boundary: judge the whole failover phase like any
        // other, including the zero-lag replication SLOs.
        let (t_end, snap_end) = observe_scrape(&state, &obs, scrape_addr);
        let window = SeriesWindow::between(t_prev, &snap_prev, t_end, &snap_end);
        let verdicts = state
            .lock()
            .expect("soak state")
            .engine
            .verdicts_for(&window);
        let breached = verdicts.iter().any(|v| !v.healthy);
        let ops = pre_kill_ops + post_kill_ops;
        total_ops += ops;
        phases.push(PhaseOutcome {
            name: "failover",
            expect_breach: false,
            breached,
            ops,
            requests_delta: window.counter_delta(SCRAPED_REQUESTS),
            errors_delta: window.counter_sum(SCRAPED_ERROR_KEYS),
            shed_delta: window.counter_sum(SCRAPED_SHED_KEYS),
            start_secs: t_prev.secs(),
            end_secs: t_end.secs(),
            verdicts,
        });
        t_prev = t_end;
        snap_prev = snap_end;

        let final_counters = obs.snapshot();
        FailoverOutcome {
            epoch_before: 1,
            epoch_after,
            promoted_follower: promoted_name.clone(),
            records_replayed: report.records_applied as u64,
            pre_kill_ops,
            post_kill_ops,
            endpoint_rotations: final_counters.counter("transport.endpoint_rotations"),
            failovers: final_counters.counter("repl.failovers"),
        }
    });

    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");
    if let Some(l) = listener.take() {
        l.shutdown();
    }
    if let Some(l) = listener_b.take() {
        l.shutdown();
    }
    drop(server_b);

    // Integrity of the scrape pipeline itself: the final parsed scrape
    // must agree with the registry read directly.
    let direct = obs.snapshot();
    let scrape_matches_registry = snap_prev.counter(SCRAPED_REQUESTS)
        == direct.counter("server.requests")
        && snap_prev.counter("server_malformed_frames")
            == direct.counter("server.malformed_frames")
        && snap_prev.counter("fleet_ops") == direct.counter("fleet.ops");

    let state = match Arc::try_unwrap(state) {
        Ok(m) => m.into_inner().expect("soak state"),
        Err(_) => unreachable!("sampler joined, no other holders"),
    };
    let reconciliation = state.ring.reconcile_all();

    SoakOutcome {
        seed: cfg.seed,
        drones: cfg.drones,
        clients: cfg.clients,
        phases,
        ring: state.ring,
        slo_events: state.events,
        reconciliation,
        total_ops,
        client_errors: err_counter.get(),
        labels_admitted: interner.len(),
        labels_dropped: interner.dropped(),
        label_cap: cfg.label_cap,
        scrape_matches_registry,
        failover,
        transparency,
    }
}

// ------------------------------------------------------------- report

/// Serialises a [`SoakOutcome`] to the schema-versioned soak report.
pub fn soak_report_json(outcome: &SoakOutcome) -> Json {
    Json::obj([
        ("schema_version", Json::Num(SOAK_SCHEMA_VERSION as f64)),
        ("kind", Json::str("alidrone_soak_report")),
        ("seed", Json::Num(outcome.seed as f64)),
        ("drones", Json::Num(outcome.drones as f64)),
        ("clients", Json::Num(outcome.clients as f64)),
        (
            "totals",
            Json::obj([
                ("ops", Json::Num(outcome.total_ops as f64)),
                ("client_errors", Json::Num(outcome.client_errors as f64)),
                (
                    "scrape_matches_registry",
                    Json::Bool(outcome.scrape_matches_registry),
                ),
            ]),
        ),
        (
            "labels",
            Json::obj([
                ("cap", Json::Num(outcome.label_cap as f64)),
                ("admitted", Json::Num(outcome.labels_admitted as f64)),
                ("dropped", Json::Num(outcome.labels_dropped as f64)),
            ]),
        ),
        (
            "failover",
            outcome
                .failover
                .as_ref()
                .map_or(Json::Null, ToJson::to_json),
        ),
        (
            "transparency",
            outcome
                .transparency
                .as_ref()
                .map_or(Json::Null, ToJson::to_json),
        ),
        (
            "phases",
            Json::arr(outcome.phases.iter().map(ToJson::to_json)),
        ),
        (
            "slo_events",
            Json::arr(outcome.slo_events.iter().map(ToJson::to_json)),
        ),
        ("series", outcome.ring.to_json()),
        (
            "reconciliation",
            Json::arr(outcome.reconciliation.iter().map(ToJson::to_json)),
        ),
    ])
}

/// Machine-checks a soak report from the JSON alone: schema version,
/// verdict presence, op-ledger/request-counter agreement, exact series
/// reconciliation, scrape-vs-registry agreement, and breach
/// expectations. Returns the first violated invariant.
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn check_report(report: &Json) -> Result<(), String> {
    let version = report
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != SOAK_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != expected {SOAK_SCHEMA_VERSION}"
        ));
    }
    let phases = report
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing phases array")?;
    if phases.is_empty() {
        return Err("phases array is empty".into());
    }
    for phase in phases {
        let name = phase
            .get("name")
            .and_then(Json::as_str)
            .ok_or("phase missing name")?;
        let verdicts = phase
            .get("verdicts")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("phase {name}: missing verdicts"))?;
        if verdicts.is_empty() {
            return Err(format!("phase {name}: no SLO verdicts"));
        }
        let any_unhealthy = verdicts
            .iter()
            .any(|v| v.get("healthy").and_then(Json::as_bool) == Some(false));
        let breached = phase
            .get("breached")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("phase {name}: missing breached flag"))?;
        if breached != any_unhealthy {
            return Err(format!(
                "phase {name}: breached flag {breached} disagrees with verdicts"
            ));
        }
        let expect = phase
            .get("expect_breach")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("phase {name}: missing expect_breach"))?;
        if expect != breached {
            return Err(format!(
                "phase {name}: expected breach={expect}, observed breach={breached}"
            ));
        }
        let ops = phase
            .get("ops")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("phase {name}: missing ops"))?;
        let requests = phase
            .get("requests_delta")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("phase {name}: missing requests_delta"))?;
        if ops == 0 {
            return Err(format!("phase {name}: op ledger is empty"));
        }
        if ops != requests {
            return Err(format!(
                "phase {name}: op ledger says {ops} requests, server counted {requests}"
            ));
        }
    }
    let recon = report
        .get("reconciliation")
        .and_then(Json::as_arr)
        .ok_or("missing reconciliation array")?;
    if recon.is_empty() {
        return Err("reconciliation array is empty".into());
    }
    for row in recon {
        let name = row.get("name").and_then(Json::as_str).unwrap_or("?");
        if row.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("counter {name} failed series reconciliation"));
        }
    }
    if report
        .get("totals")
        .and_then(|t| t.get("scrape_matches_registry"))
        .and_then(Json::as_bool)
        != Some(true)
    {
        return Err("final scrape disagreed with the server registry".into());
    }
    let windows = report
        .get("series")
        .and_then(|s| s.get("windows"))
        .and_then(Json::as_arr)
        .ok_or("missing series.windows")?;
    if windows.is_empty() {
        return Err("series has no windows".into());
    }
    // Replicated soaks carry a failover section; `null` (plain soak)
    // is fine, anything else must describe exactly one clean
    // kill-and-promote.
    if let Some(fo) = report.get("failover").filter(|f| !matches!(f, Json::Null)) {
        let num = |key: &str| {
            fo.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("failover: missing {key}"))
        };
        let (before, after) = (num("epoch_before")?, num("epoch_after")?);
        if after != before + 1 {
            return Err(format!(
                "failover: epoch went {before} -> {after}, expected a single bump"
            ));
        }
        if num("failovers")? != 1 {
            return Err("failover: repl.failovers must be exactly 1".into());
        }
        if num("records_replayed")? == 0 {
            return Err("failover: promoted follower replayed no records".into());
        }
        if num("pre_kill_ops")? == 0 || num("post_kill_ops")? == 0 {
            return Err("failover: phase must issue traffic on both sides of the kill".into());
        }
        if num("endpoint_rotations")? == 0 {
            return Err("failover: no client ever rotated off the dead primary".into());
        }
        if !phases
            .iter()
            .any(|p| p.get("name").and_then(Json::as_str) == Some("failover"))
        {
            return Err("failover: section present but no failover phase in ledger".into());
        }
    }
    // Tamper soaks carry a transparency section; `null` (plain soak)
    // is fine, anything else must describe a cohort that checked
    // proofs and saw not one of them fail.
    if let Some(tr) = report
        .get("transparency")
        .filter(|t| !matches!(t, Json::Null))
    {
        let num = |key: &str| {
            tr.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("transparency: missing {key}"))
        };
        if num("proof_checks")? == 0 {
            return Err("transparency: no proofs were ever checked".into());
        }
        if num("proof_failures")? != 0 {
            return Err(format!(
                "transparency: {} offline proof verifications failed",
                num("proof_failures")?
            ));
        }
        let (before, after) = (num("tree_size_before")?, num("tree_size_after")?);
        if after <= before {
            return Err(format!(
                "transparency: audit tree never advanced ({before} -> {after})"
            ));
        }
        if !phases
            .iter()
            .any(|p| p.get("name").and_then(Json::as_str) == Some("transparency"))
        {
            return Err("transparency: section present but no transparency phase in ledger".into());
        }
    }
    Ok(())
}

/// The deterministic projection of an outcome: everything that must be
/// bit-identical across two runs with the same seed. Wall-clock-shaped
/// data (window timings, latency values, interner slot winners) is
/// deliberately excluded.
pub fn determinism_signature(outcome: &SoakOutcome) -> String {
    let mut sig = String::new();
    for p in &outcome.phases {
        sig.push_str(p.name);
        sig.push_str(&format!(
            ":ops={},req={},err={},shed={},breached={}[",
            p.ops, p.requests_delta, p.errors_delta, p.shed_delta, p.breached
        ));
        for v in &p.verdicts {
            sig.push_str(&format!("{}={};", v.name, v.healthy));
        }
        sig.push(']');
        sig.push('\n');
    }
    sig.push_str(&format!(
        "total_ops={},client_errors={}",
        outcome.total_ops, outcome.client_errors
    ));
    if let Some(fo) = &outcome.failover {
        sig.push_str(&format!(
            "\nfailover:epoch={}->{},promoted={},pre={},post={}",
            fo.epoch_before,
            fo.epoch_after,
            fo.promoted_follower,
            fo.pre_kill_ops,
            fo.post_kill_ops
        ));
    }
    if let Some(tr) = &outcome.transparency {
        sig.push_str(&format!(
            "\ntransparency:tree={}->{},checks={},failures={}",
            tr.tree_size_before, tr.tree_size_after, tr.proof_checks, tr.proof_failures
        ));
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> FleetConfig {
        FleetConfig {
            clients: 2,
            label_cap: 8,
            sample_every: StdDuration::from_millis(150),
            ..FleetConfig::soak(seed, 12)
        }
    }

    /// One tiny fleet end-to-end: phases reconcile with the op ledger,
    /// the degraded phase breaches while healthy phases pass, the
    /// report machine-checks after a JSON round trip, and a second run
    /// with the same seed produces an identical determinism signature.
    #[test]
    fn tiny_fleet_is_deterministic_and_machine_checkable() {
        let first = run_fleet(&tiny_config(42));
        assert_eq!(first.phases.len(), 5);
        for p in &first.phases {
            assert_eq!(
                p.ops, p.requests_delta,
                "phase {}: op ledger vs server requests",
                p.name
            );
            assert_eq!(p.expect_breach, p.breached, "phase {}", p.name);
        }
        assert!(first.reconciliation.iter().all(CounterReconciliation::ok));
        assert!(first.scrape_matches_registry);
        // Label cap 8 < 12 drones: the interner must have overflowed.
        assert_eq!(first.labels_admitted, 8);
        assert!(first.labels_dropped > 0);

        let report = soak_report_json(&first);
        let round_tripped = Json::parse(&report.to_pretty()).expect("report parses");
        check_report(&round_tripped).expect("report machine-checks");

        let second = run_fleet(&tiny_config(42));
        assert_eq!(
            determinism_signature(&first),
            determinism_signature(&second),
            "same seed must reproduce phase verdicts and ledgers"
        );
    }

    /// A replicated tiny fleet: the campaign runs against a journaled
    /// primary shipping to two followers, then the failover phase
    /// kills the primary, promotes the most-caught-up follower, and
    /// the phase — including the zero-lag replication SLOs — judges
    /// clean on the quiesced boundary. The report's failover section
    /// machine-checks after a JSON round trip.
    #[test]
    fn tiny_failover_fleet_promotes_and_machine_checks() {
        let cfg = FleetConfig {
            failover: true,
            ..tiny_config(11)
        };
        let outcome = run_fleet(&cfg);
        let fo = outcome.failover.as_ref().expect("failover ledger");
        assert_eq!((fo.epoch_before, fo.epoch_after), (1, 2));
        assert_eq!(fo.failovers, 1);
        assert!(fo.records_replayed > 0, "promotion replayed nothing");
        assert!(
            fo.endpoint_rotations >= 1,
            "no client rotated off the dead primary"
        );
        let phase = outcome
            .phases
            .iter()
            .find(|p| p.name == "failover")
            .expect("failover phase in ledger");
        assert_eq!(phase.ops, phase.requests_delta);
        assert!(
            !phase.breached,
            "failover phase breached: {:?}",
            phase.verdicts
        );
        assert!(phase
            .verdicts
            .iter()
            .any(|v| v.name == "repl_lag_bytes" && v.healthy));
        let report = soak_report_json(&outcome);
        let round_tripped = Json::parse(&report.to_pretty()).expect("report parses");
        check_report(&round_tripped).expect("failover report machine-checks");
    }

    /// A tamper-mode tiny fleet: every drone submits a verdict and then
    /// audits the server — signed tree head, inclusion proof for its
    /// own verdict, consistency proof across successive heads — all
    /// verified offline. Zero proof failures, the `audit_proofs` SLO
    /// judges healthy on the phase boundary, and the report's
    /// transparency section machine-checks after a JSON round trip.
    #[test]
    fn tiny_tamper_fleet_verifies_proofs_and_machine_checks() {
        let cfg = FleetConfig {
            tamper: true,
            ..tiny_config(23)
        };
        let outcome = run_fleet(&cfg);
        let tr = outcome.transparency.as_ref().expect("transparency ledger");
        assert_eq!(
            tr.proof_failures, 0,
            "offline proof verification failed during the soak"
        );
        // 4 checks per drone (two head signatures, inclusion,
        // consistency) plus 3 driver-side checks.
        assert_eq!(tr.proof_checks, 4 * outcome.drones as u64 + 3);
        assert!(
            tr.tree_size_after >= tr.tree_size_before + outcome.drones as u64,
            "audit tree advanced {} -> {}, expected at least one leaf per drone",
            tr.tree_size_before,
            tr.tree_size_after
        );
        let phase = outcome
            .phases
            .iter()
            .find(|p| p.name == "transparency")
            .expect("transparency phase in ledger");
        assert_eq!(phase.ops, phase.requests_delta);
        assert!(
            !phase.breached,
            "transparency phase breached: {:?}",
            phase.verdicts
        );
        assert!(phase
            .verdicts
            .iter()
            .any(|v| v.name == "audit_proofs" && v.healthy));
        let report = soak_report_json(&outcome);
        let round_tripped = Json::parse(&report.to_pretty()).expect("report parses");
        check_report(&round_tripped).expect("tamper report machine-checks");
    }

    /// The checker rejects reports whose breach expectations are not
    /// met, so CI cannot greenlight a soak that silently stopped
    /// injecting chaos.
    #[test]
    fn check_report_rejects_expectation_mismatch() {
        let outcome = run_fleet(&tiny_config(7));
        let mut report = soak_report_json(&outcome);
        // Flip the degraded phase's expectation in the JSON.
        if let Json::Obj(ref mut fields) = report {
            let phases = fields
                .iter_mut()
                .find(|(k, _)| k == "phases")
                .map(|(_, v)| v)
                .expect("phases");
            if let Json::Arr(ref mut items) = phases {
                let degraded = items
                    .iter_mut()
                    .find(|p| p.get("name").and_then(Json::as_str) == Some("degraded"))
                    .expect("degraded phase");
                if let Json::Obj(ref mut pf) = degraded {
                    for (k, v) in pf.iter_mut() {
                        if k == "expect_breach" {
                            *v = Json::Bool(false);
                        }
                    }
                }
            }
        }
        let err = check_report(&report).expect_err("mismatch must fail");
        assert!(err.contains("degraded"), "unexpected error: {err}");
    }
}
