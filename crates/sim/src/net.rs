//! Wire-phase execution of a scenario run: submit the flight's PoA to
//! an auditor over a chosen transport.
//!
//! The flight itself (sampling, signing) is transport-agnostic — this
//! module takes a finished [`ScenarioRun`] and drives the protocol's
//! networked half (register drone, register zones, submit PoA) either
//! in-process or over a real loopback TCP socket, optionally through
//! deterministic fault injection with client-side retry.
//!
//! Every response frame is captured (trace envelope stripped), so two
//! submissions of the same run over different transports can be
//! compared byte-for-byte: the auditor's verdicts must not depend on
//! how the frames travelled.

use std::sync::{Arc, Mutex};

use alidrone_core::wire::server::AuditorServer;
use alidrone_core::wire::split_envelope;
use alidrone_core::wire::tcp::{TcpServer, TcpTransport};
use alidrone_core::wire::transport::{AuditorClient, Flaky, InProcess, RetryPolicy, Transport};
use alidrone_core::{Auditor, AuditorConfig, DroneId, ProtocolError, Verdict, ZoneId};
use alidrone_crypto::rsa::RsaPrivateKey;
use alidrone_geo::Timestamp;

use crate::runner::ScenarioRun;
use crate::scenarios::Scenario;

/// Which transport carries the wire phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Direct in-process delivery ([`InProcess`]).
    InProcess,
    /// A real TCP round trip over a loopback socket
    /// ([`TcpServer`] + [`TcpTransport`]).
    Tcp,
}

/// Options for [`submit_run`] beyond the transport choice.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireOptions {
    /// Drop every `n`-th physical call ([`Flaky::drop_every`]); pair
    /// with `retry` so idempotent requests survive the faults.
    pub drop_every: Option<u64>,
    /// Client retry policy; `None` keeps the legacy fail-fast client.
    pub retry: Option<RetryPolicy>,
    /// Mount a live introspection endpoint on this address (see
    /// [`AuditorServerBuilder::scrape`](alidrone_core::wire::server::AuditorServerBuilder::scrape)),
    /// so the submission can be watched with `curl <addr>/metrics`
    /// mid-flight.
    pub scrape: Option<std::net::SocketAddr>,
}

/// What the wire phase produced.
#[derive(Debug)]
pub struct WireReport {
    /// The issued drone id.
    pub drone: DroneId,
    /// The issued zone ids, in scenario iteration order.
    pub zones: Vec<ZoneId>,
    /// The auditor's verdict on the PoA.
    pub verdict: Verdict,
    /// Every response frame the client saw, in request order, with the
    /// trace envelope stripped — byte-comparable across transports.
    pub response_frames: Vec<Vec<u8>>,
}

/// A [`Transport`] decorator that records each (envelope-stripped)
/// response frame for later comparison.
#[derive(Debug)]
struct Recording<T> {
    inner: T,
    frames: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl<T: Transport> Transport for Recording<T> {
    fn call(&self, request: &[u8], now: Timestamp) -> Result<Vec<u8>, ProtocolError> {
        let response = self.inner.call(request, now)?;
        let payload = match split_envelope(&response) {
            Ok((_, payload)) => payload.to_vec(),
            Err(_) => response.clone(),
        };
        self.frames.lock().expect("frame log lock").push(payload);
        Ok(response)
    }
}

/// Submits `run`'s PoA to a fresh auditor over the chosen transport:
/// registers the drone and every scenario zone, submits, and returns
/// the verdict with the captured response frames.
///
/// The server shares the run's obs handle and flight recorder, and the
/// client parents its wire spans under the run's `flight` span — so the
/// submission lands in the same stitched trace whichever transport
/// carried it (over TCP, via the wire trace envelope).
///
/// # Errors
///
/// Propagates socket and protocol failures (a dropped non-retryable
/// frame surfaces here).
pub fn submit_run(
    run: &ScenarioRun,
    scenario: &Scenario,
    mode: WireMode,
    auditor_key: RsaPrivateKey,
    operator_key: &RsaPrivateKey,
    opts: WireOptions,
) -> Result<WireReport, ProtocolError> {
    let obs = run.obs.clone();
    let mut builder = AuditorServer::builder(Auditor::with_obs(
        AuditorConfig::default(),
        auditor_key,
        &obs,
    ))
    .obs(&obs)
    .flight_recorder(run.recorder.clone());
    if let Some(addr) = opts.scrape {
        builder = builder.scrape(addr);
    }
    let server = Arc::new(builder.build());
    if let Some(addr) = server.scrape_addr() {
        println!("scrape endpoint live: curl http://{addr}/metrics");
    }

    // The TCP listener must outlive the client calls; hold it here and
    // shut it down gracefully at the end.
    let mut tcp = None;
    let raw: Box<dyn Transport + Send + Sync> = match mode {
        WireMode::InProcess => Box::new(InProcess::shared(Arc::clone(&server), &obs)),
        WireMode::Tcp => {
            let listener = TcpServer::bind(("127.0.0.1", 0), Arc::clone(&server))
                .map_err(|e| ProtocolError::Transport(e.to_string()))?;
            let transport = TcpTransport::with_obs(listener.local_addr(), &obs);
            tcp = Some(listener);
            Box::new(transport)
        }
    };
    let raw: Box<dyn Transport + Send + Sync> = match opts.drop_every {
        Some(period) => Box::new(Flaky::with_obs(raw, &obs).drop_every(period)),
        None => raw,
    };
    let frames = Arc::new(Mutex::new(Vec::new()));
    let mut client = AuditorClient::with_obs(
        Recording {
            inner: raw,
            frames: Arc::clone(&frames),
        },
        &obs,
    );
    if let Some(policy) = opts.retry {
        client = client.retry(policy);
    }
    client.set_trace_parent(run.flight_span);

    let now = Timestamp::from_secs(scenario.duration.secs() + 60.0);
    let drone = client.register_drone(
        operator_key.public_key().clone(),
        run.tee.tee_public_key(),
        now,
    )?;
    let mut zones = Vec::new();
    for zone in scenario.zones.iter() {
        zones.push(client.register_zone(*zone, now)?);
    }
    let verdict = client.submit_poa(
        drone,
        (run.record.window_start, run.record.window_end),
        &run.record.poa,
        now,
    )?;

    if let Some(listener) = tcp {
        listener.shutdown();
    }
    let response_frames = frames.lock().expect("frame log lock").clone();
    Ok(WireReport {
        drone,
        zones,
        verdict,
        response_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{experiment_key, run_scenario};
    use crate::scenarios::airport;
    use alidrone_core::SamplingStrategy;
    use alidrone_crypto::rng::XorShift64;
    use alidrone_tee::CostModel;

    fn keys() -> (RsaPrivateKey, RsaPrivateKey) {
        let mut rng = XorShift64::seed_from_u64(0x0DDC0FFE);
        (
            RsaPrivateKey::generate(512, &mut rng),
            RsaPrivateKey::generate(512, &mut rng),
        )
    }

    #[test]
    fn tcp_and_in_process_submissions_agree_byte_for_byte() {
        let scenario = airport();
        let run = run_scenario(
            &scenario,
            SamplingStrategy::Adaptive,
            experiment_key(),
            CostModel::free(),
        )
        .unwrap();
        let (auditor_key, operator_key) = keys();

        let local = submit_run(
            &run,
            &scenario,
            WireMode::InProcess,
            auditor_key.clone(),
            &operator_key,
            WireOptions::default(),
        )
        .unwrap();
        let networked = submit_run(
            &run,
            &scenario,
            WireMode::Tcp,
            auditor_key,
            &operator_key,
            WireOptions::default(),
        )
        .unwrap();

        assert_eq!(local.verdict, networked.verdict);
        assert_eq!(local.drone, networked.drone);
        assert_eq!(local.zones, networked.zones);
        assert_eq!(
            local.response_frames, networked.response_frames,
            "response frames must be byte-identical across transports"
        );
    }
}
