# Offline-only developer entry points; CI (.github/workflows/ci.yml)
# runs the same `check` sequence.

CARGO ?= cargo

.PHONY: check fmt clippy doc build test examples experiments trace-smoke tcp-smoke stress chaos overload scrape-smoke soak-smoke failover tamper bench-json bench-diff

check: fmt clippy doc test trace-smoke tcp-smoke chaos overload soak-smoke failover tamper

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets --offline -- -D warnings

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps --offline

build:
	$(CARGO) build --workspace --release --offline

test:
	$(CARGO) test --workspace --release --offline -q

trace-smoke:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_trace

# Loopback-only: submits a scenario PoA over 127.0.0.1 TCP and checks
# byte parity with the in-process transport. No external network.
tcp-smoke:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_tcp

# The networked-auditor stress test on its own (it also runs in `test`).
stress:
	$(CARGO) test --release --offline --test wire_concurrency -q

# Seeded chaos campaign (fixed seeds, deterministic replay, offline)
# plus the on-disk crash-recovery smoke. Also runs inside `test`.
chaos:
	$(CARGO) test --release --offline --test chaos -q
	$(CARGO) run --release --offline --example crash_recovery

# Overload-protection campaign (bounded admission queue, deadline
# shedding, rate limiting, circuit breaking) plus the 4x-load TCP
# smoke. The campaign also runs inside `test`.
overload:
	$(CARGO) test --release --offline --test overload -q
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_tcp -- --overload

# Live-introspection smoke: the overload burst with the scrape endpoint
# mounted; the binary fetches its own /metrics and asserts on it.
scrape-smoke:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_tcp -- --overload --scrape

# Fleet soak smoke (~200 drones, two seeded runs, well under a minute):
# staged load against the TCP auditor with SLO verdicts judged from
# scraped windows. Asserts the chaos phase breaches, healthy phases
# pass, verdicts are identical across both runs, and the written
# target/SOAK_report.json machine-checks after a disk round trip.
soak-smoke:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_soak -- --smoke --out target/SOAK_report.json

# Kill-the-primary failover gate: a reduced-seed replication chaos
# campaign (FAILOVER_SEEDS trims the default 40 seeds), the replicated
# soak with its kill-and-promote phase (report lands in
# target/SOAK_failover_report.json for CI to archive), and the
# end-to-end failover example.
failover:
	FAILOVER_SEEDS=$(or $(FAILOVER_SEEDS),12) $(CARGO) test --release --offline --test failover -q
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_soak -- --smoke --failover --out target/SOAK_failover_report.json
	$(CARGO) run --release --offline --example failover

# Tamper-evidence gate: the seeded tamper-injection campaign against
# the hash-chained audit log (TAMPER_SEEDS trims the default 40 seeds;
# every arm — bit flips, reorders, drops, rewrites, checkpoint-root
# forgeries, replication splices — must be detected, never silently
# accepted), then the tamper-mode soak where every drone verifies tree
# heads and inclusion/consistency proofs offline (report lands in
# target/SOAK_tamper_report.json for CI to archive).
tamper:
	TAMPER_SEEDS=$(or $(TAMPER_SEEDS),12) $(CARGO) test --release --offline --test tamper -q
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_soak -- --smoke --tamper --out target/SOAK_tamper_report.json

# Regenerate the persistent perf baseline (BENCH_poa.json at the repo
# root). BENCH_POA_SAMPLES trades precision for wall time.
bench-json:
	$(CARGO) run -p alidrone-bench --release --offline --bin bench_poa

# Compare a fresh run against the committed baseline without touching
# it. Exits non-zero when a case's median regresses past the threshold
# (default 25%); pass BENCH_GATE=prefix,prefix to narrow which cases
# can fail, as CI does for the crypto fast path.
bench-diff:
	$(CARGO) run -p alidrone-bench --release --offline --bin bench_poa -- --out target/BENCH_poa.new.json
	$(CARGO) run -p alidrone-bench --release --offline --bin bench_poa -- --diff BENCH_poa.json target/BENCH_poa.new.json $(if $(BENCH_GATE),--gate $(BENCH_GATE))

examples:
	$(CARGO) build --release --offline --examples

experiments:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_all
