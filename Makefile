# Offline-only developer entry points; CI (.github/workflows/ci.yml)
# runs the same `check` sequence.

CARGO ?= cargo

.PHONY: check fmt clippy doc build test examples experiments trace-smoke

check: fmt clippy doc test trace-smoke

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets --offline -- -D warnings

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps --offline

build:
	$(CARGO) build --workspace --release --offline

test:
	$(CARGO) test --workspace --release --offline -q

trace-smoke:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_trace

examples:
	$(CARGO) build --release --offline --examples

experiments:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_all
