# Offline-only developer entry points; CI (.github/workflows/ci.yml)
# runs the same `check` sequence.

CARGO ?= cargo

.PHONY: check fmt clippy build test examples experiments

check: fmt clippy test

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets --offline -- -D warnings

build:
	$(CARGO) build --workspace --release --offline

test:
	$(CARGO) test --workspace --release --offline -q

examples:
	$(CARGO) build --release --offline --examples

experiments:
	$(CARGO) run -p alidrone-sim --release --offline --bin exp_all
