//! Quickstart: one honest drone proves NFZ compliance end to end.
//!
//! Walks the full AliDrone protocol (paper §IV-B):
//!
//! * step 0: drone registration (operator key `D⁺` + TEE key `T⁺`),
//! * step 1: zone registration by a zone owner,
//! * steps 2–3: signed zone query / response,
//! * step 4: flight with adaptive sampling, then PoA submission +
//!   verification.
//!
//! Run: `cargo run --example quickstart`

use std::error::Error;
use std::sync::Arc;

use alidrone::core::{Auditor, AuditorConfig, DroneOperator, SamplingStrategy, ZoneOwner};
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Speed};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::SecureWorldBuilder;
use alidrone_crypto::rng::XorShift64;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(2026);

    // --- The world: a launch pad, a delivery point, a neighbour's NFZ.
    let pad = GeoPoint::new(40.1164, -88.2434)?;
    let customer = pad.destination(90.0, Distance::from_km(1.2));
    let neighbour_home = pad
        .destination(90.0, Distance::from_meters(600.0))
        .destination(0.0, Distance::from_meters(90.0));

    // --- The drone hardware: a 30 mph flight plan on a 5 Hz GPS,
    //     with the receiver shared by the normal world (Adapter) and the
    //     secure world (GPS Driver).
    let route = TrajectoryBuilder::start_at(pad)
        .travel_to(customer, Speed::from_mph(30.0))
        .build()?;
    let flight_time = route.total_duration();
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));

    // --- Manufacturing: the TEE keypair is burned in at the factory.
    //     (512-bit keys keep the example fast; the paper uses 1024/2048.)
    let world = SecureWorldBuilder::new()
        .with_generated_key(512, &mut rng)
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .build()?;

    // --- Roles.
    let auditor = Auditor::new(
        AuditorConfig::default(),
        RsaPrivateKey::generate(512, &mut rng),
    );
    let mut operator = DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), world.client());
    let mut neighbour = ZoneOwner::new(NoFlyZone::new(neighbour_home, Distance::from_feet(20.0)));

    // Step 0/1 — registration.
    let drone_id = operator.register_with(&auditor);
    let zone_id = neighbour.register_with(&auditor);
    println!("registered {drone_id} and {zone_id}");

    // Step 2–3 — zone query for the navigation rectangle.
    let response = operator.query_zones(
        &auditor,
        pad.destination(225.0, Distance::from_km(2.0)),
        pad.destination(45.0, Distance::from_km(2.0)),
        &mut rng,
    )?;
    println!(
        "auditor returned {} zone(s) in the navigation area",
        response.zones.len()
    );

    // Step 4 — fly with adaptive sampling, then submit the PoA.
    let record = operator.fly(
        &clock,
        receiver.as_ref(),
        &response.zone_set(),
        SamplingStrategy::Adaptive,
        flight_time,
    )?;
    println!(
        "flight complete: {} authenticated samples over {:.0} s ({})",
        record.sample_count(),
        (record.window_end - record.window_start).secs(),
        record.strategy,
    );

    let report = operator.submit_encrypted(&auditor, &record, clock.now(), &mut rng)?;
    println!("auditor verdict: {}", report.verdict);
    assert!(report.is_compliant());

    // Later: the neighbour thinks they saw the drone overhead…
    let accusation = neighbour
        .report(drone_id, record.window_start + flight_time * 0.5)
        .expect("registered zone");
    let outcome = auditor.handle_accusation(&accusation)?;
    println!("accusation outcome: {outcome:?}");

    Ok(())
}
