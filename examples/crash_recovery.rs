//! Crash-safe auditor quickstart: journal, crash, recover, compact.
//!
//! The auditor write-ahead journals every durable mutation (drone and
//! zone registrations, burned nonces, accepted PoAs). This example runs
//! the full lifecycle against a real file:
//!
//! 1. journal a working session to disk,
//! 2. "crash" (drop the process state) and recover by replay,
//! 3. tear the final record the way a power cut mid-append would and
//!    show recovery truncating to the clean prefix,
//! 4. compact to a snapshot so replay cost stays bounded.
//!
//! Run with: `cargo run --release --offline --example crash_recovery`

use std::sync::Arc;

use alidrone::core::journal::FsBackend;
use alidrone::core::{Auditor, AuditorConfig, PoaSubmission, ProofOfAlibi, Submission, ZoneQuery};
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone::tee::SignedSample;

fn key(seed: u64) -> RsaPrivateKey {
    RsaPrivateKey::generate(512, &mut XorShift64::seed_from_u64(seed))
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).expect("valid pad")
}

/// An honest eastbound alibi trace signed by the drone TEE key.
fn signed_samples(tee: &RsaPrivateKey, n: usize) -> Vec<SignedSample> {
    (0..n)
        .map(|i| {
            let sample = GpsSample::new(
                pad().destination(90.0, Distance::from_meters(10.0 * i as f64)),
                Timestamp::from_secs(i as f64),
            );
            let sig = tee.sign(&sample.to_bytes(), HashAlg::Sha1).expect("sign");
            SignedSample::from_parts(sample, sig, HashAlg::Sha1)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("alidrone-crash-recovery.wal");
    let _ = std::fs::remove_file(&path);
    let auditor_key = key(0xA0D1);
    let tee_key = key(0xD201);
    let operator_key = key(0x09E0);

    // ---- 1. A working session, journaled to disk ---------------------
    let backend = Arc::new(FsBackend::new(&path));
    let (auditor, report) =
        Auditor::recover(backend, AuditorConfig::default(), auditor_key.clone())?;
    println!(
        "fresh journal at {}: {} records replayed",
        path.display(),
        report.records_applied
    );

    let id = auditor.register_drone(
        operator_key.public_key().clone(),
        tee_key.public_key().clone(),
    );
    auditor.register_zone(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(1.0)),
        Distance::from_meters(50.0),
    ));
    let query = ZoneQuery::new_signed(
        id,
        pad().destination(225.0, Distance::from_km(2.0)),
        pad().destination(45.0, Distance::from_km(2.0)),
        [7u8; 16],
        &operator_key,
    )?;
    auditor.handle_zone_query(&query)?;
    let verdict = auditor
        .verify(
            &Submission::plain(PoaSubmission {
                drone_id: id,
                window_start: Timestamp::from_secs(0.0),
                window_end: Timestamp::from_secs(2.0),
                poa: ProofOfAlibi::from_entries(signed_samples(&tee_key, 3)),
            }),
            Timestamp::from_secs(10.0),
        )?
        .verdict;
    println!("session: drone {id}, 1 zone, 1 burned nonce, PoA verdict: {verdict}");
    let live_state = auditor.snapshot();
    drop(auditor); // ---- the process "crashes" here ----

    // ---- 2. Recovery replays the journal ----------------------------
    let (recovered, report) = Auditor::recover(
        Arc::new(FsBackend::new(&path)),
        AuditorConfig::default(),
        auditor_key.clone(),
    )?;
    println!(
        "recovered: {} records, torn tail: {}, {} drones / {} zones / {} PoAs",
        report.records_applied,
        report.torn_tail,
        recovered.drone_count(),
        recovered.zone_count(),
        recovered.stored_poa_count(),
    );
    assert_eq!(recovered.snapshot(), live_state, "replay must be exact");

    // A replayed nonce is still rejected after recovery.
    let replay = recovered.handle_zone_query(&query);
    println!("replayed nonce after recovery: {}", replay.unwrap_err());

    // ---- 3. A torn tail (power cut mid-append) ----------------------
    let image = std::fs::read(&path)?;
    std::fs::write(&path, &image[..image.len() - 3])?;
    let (after_tear, report) = Auditor::recover(
        Arc::new(FsBackend::new(&path)),
        AuditorConfig::default(),
        auditor_key.clone(),
    )?;
    println!(
        "after torn tail: {} records survive (torn: {}, {} bytes discarded), \
         {} PoAs",
        report.records_applied,
        report.torn_tail,
        report.torn_bytes,
        after_tear.stored_poa_count(),
    );

    // ---- 4. Compaction bounds future replay -------------------------
    let before = std::fs::metadata(&path)?.len();
    after_tear.compact_journal()?;
    let after = std::fs::metadata(&path)?.len();
    let (compacted, report) = Auditor::recover(
        Arc::new(FsBackend::new(&path)),
        AuditorConfig::default(),
        auditor_key,
    )?;
    println!(
        "compacted {before} -> {after} bytes; recovery now replays \
         {} record(s) (snapshot loaded: {})",
        report.records_applied, report.snapshot_loaded,
    );
    assert_eq!(compacted.snapshot(), after_tear.snapshot());

    let _ = std::fs::remove_file(&path);
    Ok(())
}
