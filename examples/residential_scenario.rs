//! Field study 2 (paper §VI-A3): a dense residential street with 94+
//! house NFZs, including the GPS dropout that costs adaptive sampling
//! its single insufficient pair.
//!
//! Run: `cargo run --release --example residential_scenario`

use std::error::Error;

use alidrone::core::SamplingStrategy;
use alidrone::sim::metrics::{fig8b_series, min_distance_ft};
use alidrone::sim::runner::{experiment_key, run_scenario};
use alidrone::sim::scenarios::residential;
use alidrone::tee::CostModel;

fn main() -> Result<(), Box<dyn Error>> {
    let scenario = residential();
    println!(
        "residential scenario: {} NFZs (20 ft radius), ~1 mi route, {:.0} s at {} Hz GPS, {} dropout(s)",
        scenario.zones.len(),
        scenario.duration.secs(),
        scenario.hw_rate_hz,
        scenario.dropouts.len()
    );

    println!("\nstrategy          samples  insufficient  mean rate");
    println!("----------------------------------------------------");
    for (name, strategy) in [
        ("2 Hz fixed", SamplingStrategy::FixedRate(2.0)),
        ("3 Hz fixed", SamplingStrategy::FixedRate(3.0)),
        ("5 Hz fixed", SamplingStrategy::FixedRate(5.0)),
        ("adaptive", SamplingStrategy::Adaptive),
    ] {
        let run = run_scenario(&scenario, strategy, experiment_key(), CostModel::free())?;
        println!(
            "{name:<16}  {:>7}  {:>12}  {:>6.2} Hz",
            run.sample_count(),
            run.insufficient_pairs,
            run.record.mean_rate_hz()
        );
    }

    // The adaptive run in detail: rate adapts to zone proximity.
    let adaptive = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::free(),
    )?;
    println!(
        "\nclosest approach: {:.0} ft (paper: 21 ft)",
        min_distance_ft(&adaptive.record).unwrap()
    );
    let rates = fig8b_series(&adaptive.record, 4.0);
    let early: Vec<f64> = rates
        .iter()
        .filter(|p| p.t < 40.0)
        .map(|p| p.value)
        .collect();
    let late: Vec<f64> = rates
        .iter()
        .filter(|p| p.t > 100.0)
        .map(|p| p.value)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "adaptive rate: {:.1} Hz in the sparse stretch → {:.1} Hz among the dense houses",
        mean(&early),
        mean(&late)
    );
    println!(
        "adaptive's {} insufficient pair(s) come from the injected GPS dropout near 25 ft,\n\
         matching the paper's observation that the hardware briefly fell to 2.5 Hz.",
        adaptive.insufficient_pairs
    );
    Ok(())
}
