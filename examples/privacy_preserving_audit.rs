//! Privacy-preserving verification (paper §VII-B3): the auditor stores
//! only *encrypted* PoA entries; an accusation is settled by revealing
//! exactly two one-time keys, so the auditor learns a two-sample
//! fragment of the trajectory and nothing more.
//!
//! Run: `cargo run --example privacy_preserving_audit`

use std::error::Error;
use std::sync::Arc;

use alidrone::core::privacy::{check_sealed_accusation, open_entry, PrivatePoa};
use alidrone::core::{AccusationOutcome, DroneOperator, SamplingStrategy};
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, NoFlyZone, Speed, Timestamp, FAA_MAX_SPEED};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::SecureWorldBuilder;
use alidrone_crypto::rng::XorShift64;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(77);

    // A flight past a neighbour's registered zone.
    let pad = GeoPoint::new(40.1164, -88.2434)?;
    let end = pad.destination(90.0, Distance::from_km(1.0));
    let zone = NoFlyZone::new(
        pad.destination(90.0, Distance::from_meters(500.0))
            .destination(0.0, Distance::from_meters(80.0)),
        Distance::from_feet(25.0),
    );

    let route = TrajectoryBuilder::start_at(pad)
        .travel_to(end, Speed::from_mph(25.0))
        .build()?;
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_generated_key(512, &mut rng)
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .build()?;
    let operator = DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), world.client());

    let zones = std::iter::once(zone).collect();
    let record = operator.fly(
        &clock,
        receiver.as_ref(),
        &zones,
        SamplingStrategy::Adaptive,
        Duration::from_secs(80.0),
    )?;
    println!(
        "flight recorded {} authenticated samples",
        record.sample_count()
    );

    // The operator seals the PoA with per-sample one-time keys and
    // uploads only the sealed form.
    let private = PrivatePoa::seal(&record.poa, &mut rng);
    println!(
        "uploaded {} sealed entries (timestamps visible, positions encrypted)",
        private.sealed().len()
    );

    // The auditor cannot open anything on its own.
    let nosy = alidrone::core::privacy::KeyReveal {
        index: 0,
        key: [0u8; 32],
    };
    assert!(open_entry(private.sealed(), &nosy).is_err());
    println!("auditor alone cannot decrypt any entry ✔");

    // The neighbour reports a sighting mid-flight.
    let accused_time = Timestamp::from_secs(40.0);
    let (i, j) = private
        .sealed()
        .bracketing_indices(accused_time)
        .expect("covered time");
    println!("accusation at t=40 s brackets sealed entries {i} and {j}");

    // The operator reveals exactly those two keys.
    let reveals = private.reveal(&[i, j])?;
    let outcome = check_sealed_accusation(
        private.sealed(),
        &reveals,
        &world.client().tee_public_key(),
        &zone,
        accused_time,
        FAA_MAX_SPEED,
    )?;
    println!("outcome with two revealed samples: {outcome:?}");
    assert_eq!(outcome, AccusationOutcome::Refuted);

    println!(
        "\nthe auditor learned {} of {} samples — the rest of the trajectory stays private.",
        reveals.len(),
        private.sealed().len()
    );
    Ok(())
}
