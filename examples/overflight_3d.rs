//! The 3-D physical model (paper §VII-B1): flying *over* a low no-fly
//! cylinder is legal, which the 2-D model cannot express — a 2-D auditor
//! would convict this flight, a 3-D one clears it.
//!
//! Run: `cargo run --example overflight_3d`

use std::error::Error;
use std::sync::Arc;

use alidrone::geo::three_d::{check_alibi_3d, CylinderZone};
use alidrone::geo::trajectory::{Trajectory3d, TrajectoryBuilder};
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Speed, FAA_MAX_SPEED};
use alidrone::gps::{SimClock, SimulatedReceiver3d};
use alidrone::tee::{SecureWorldBuilder, SignedSample3d, GPS_SAMPLER_UUID};
use alidrone_crypto::rng::XorShift64;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(33);
    let start = GeoPoint::new(40.1164, -88.2434)?;
    let end = start.destination(90.0, Distance::from_km(1.0));

    // A 60 m-tall cylinder NFZ dead on the path (say, a construction
    // crane exclusion), radius 40 m.
    let zone_center = start.destination(90.0, Distance::from_meters(500.0));
    let cylinder = CylinderZone::new(
        zone_center,
        Distance::from_meters(40.0),
        Distance::from_meters(60.0),
    )?;
    // The 2-D view of the same zone (what a 2-D auditor would register).
    let flat_zone = NoFlyZone::new(zone_center, Distance::from_meters(40.0));

    // Flight plan: climb to 150 m, cruise straight over the zone,
    // descend at the far end.
    let plan = TrajectoryBuilder::start_at(start)
        .travel_to(end, Speed::from_mph(30.0))
        .build()?;
    let total = plan.total_duration().secs();
    let traj = Trajectory3d::new(
        plan,
        vec![
            (0.0, 0.0),
            (15.0, 150.0),
            (total - 15.0, 150.0),
            (total, 0.0),
        ],
    )?;

    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver3d::from_trajectory(
        traj,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_generated_key(512, &mut rng)
        .with_gps_device_3d(Box::new(Arc::clone(&receiver)))
        .build()?;
    let session = world.client().open_session(GPS_SAMPLER_UUID)?;

    // Sample a 3-D PoA at 1 Hz (plenty for a 40 m zone overflown at
    // 150 m).
    let mut poa3d: Vec<SignedSample3d> = Vec::new();
    let steps = total.floor() as u64;
    for k in 0..=steps {
        clock.set(alidrone::geo::Timestamp::from_secs(k as f64));
        poa3d.push(session.get_gps_auth_3d()?);
    }
    println!(
        "recorded {} authenticated 3-D samples over {:.0} s",
        poa3d.len(),
        total
    );

    // Auditor side: verify every signature…
    let tee_pub = world.client().tee_public_key();
    for s in &poa3d {
        s.verify(&tee_pub)?;
    }
    println!("all 3-D signatures verify ✔");

    // …then check the 3-D alibi against the cylinder.
    let samples: Vec<_> = poa3d.iter().map(|s| *s.sample()).collect();
    let report3d = check_alibi_3d(&samples, &[cylinder], FAA_MAX_SPEED);
    println!(
        "3-D verdict: violations {:?}, insufficient pairs {:?} → {}",
        report3d.violations,
        report3d.insufficient_pairs,
        if report3d.is_sufficient() {
            "compliant"
        } else {
            "NOT compliant"
        }
    );
    assert!(report3d.is_sufficient());

    // A 2-D auditor sees the same trace without altitude: the cruise
    // samples pass straight through the flat zone.
    let flat_violations: Vec<usize> = samples
        .iter()
        .enumerate()
        .filter(|(_, s)| flat_zone.contains(&s.point()))
        .map(|(i, _)| i)
        .collect();
    println!(
        "2-D view of the same trace: {} samples inside the flat zone → would be convicted",
        flat_violations.len()
    );
    assert!(!flat_violations.is_empty());

    // And the altitude cannot be forged: raising a low pass to 150 m
    // breaks the signature.
    let low_sample = alidrone::geo::three_d::GpsSample3d::new(
        samples[steps as usize / 2].point(),
        Distance::from_meters(20.0),
        samples[steps as usize / 2].time(),
    )?;
    let forged = SignedSample3d::from_parts(
        low_sample,
        poa3d[steps as usize / 2].signature().to_vec(),
        alidrone::crypto::rsa::HashAlg::Sha1,
    );
    assert!(forged.verify(&tee_pub).is_err());
    println!("forging the altitude field breaks the TEE signature ✔");

    Ok(())
}
