//! The threat model in action (paper §III-B): a dishonest Drone Operator
//! tries every GPS-forgery strategy the paper lists, and the Auditor
//! catches each one.
//!
//! Attacks demonstrated:
//! 1. **Pre-computed route** — an innocuous trace signed with a key the
//!    operator controls (not the TEE's) → `BadSignature`.
//! 2. **Tampered samples** — moving a genuine signed sample's position →
//!    `BadSignature`.
//! 3. **Replay** — splicing a previously recorded signed sample back in →
//!    `NonMonotonic`.
//! 4. **Relay** — submitting another drone's genuinely-signed PoA →
//!    `BadSignature` (wrong `T⁺`).
//! 5. **Omission** — dropping the samples taken near the zone →
//!    `InsufficientAlibi`.
//! 6. **Actual violation** — flying through the zone and submitting the
//!    honest trace → `InsideZone`.
//!
//! Run: `cargo run --example dishonest_operator`

use std::error::Error;
use std::sync::Arc;

use alidrone::core::{
    Auditor, AuditorConfig, DroneOperator, PoaSubmission, ProofOfAlibi, SamplingStrategy,
    Submission, Verdict,
};
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Speed};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{SecureWorldBuilder, SignedSample, TeeClient};
use alidrone_crypto::rng::XorShift64;

struct Setup {
    clock: SimClock,
    receiver: Arc<SimulatedReceiver>,
    tee: TeeClient,
}

/// Builds a drone whose route passes `offset_m` north of the zone line.
fn drone(rng: &mut XorShift64, start: GeoPoint, dist_m: f64) -> Result<Setup, Box<dyn Error>> {
    let end = start.destination(90.0, Distance::from_meters(dist_m));
    let route = TrajectoryBuilder::start_at(start)
        .travel_to(end, Speed::from_mph(30.0))
        .build()?;
    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_generated_key(512, rng)
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .build()?;
    Ok(Setup {
        clock,
        receiver,
        tee: world.client(),
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(666);
    let pad = GeoPoint::new(40.1164, -88.2434)?;

    let auditor = Auditor::new(
        AuditorConfig::default(),
        RsaPrivateKey::generate(512, &mut rng),
    );
    // The protected zone sits 100 m north of the halfway point.
    auditor.register_zone(NoFlyZone::new(
        pad.destination(90.0, Distance::from_meters(400.0))
            .destination(0.0, Distance::from_meters(100.0)),
        Distance::from_meters(30.0),
    ));

    // An honest flight to start from.
    let setup = drone(&mut rng, pad, 800.0)?;
    let mut operator =
        DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), setup.tee.clone());
    operator.register_with(&auditor);
    let honest = operator.fly(
        &setup.clock,
        setup.receiver.as_ref(),
        &auditor.zone_set(),
        SamplingStrategy::Adaptive,
        alidrone::geo::Duration::from_secs(59.0),
    )?;
    let report = operator.submit(&auditor, &honest, setup.clock.now())?;
    println!("honest flight:          {}", report.verdict);
    assert!(report.is_compliant());

    let drone_id = operator.drone_id().unwrap();
    let submit = |auditor: &Auditor, poa: ProofOfAlibi| {
        auditor
            .verify(
                &Submission::plain(PoaSubmission {
                    drone_id,
                    window_start: honest.window_start,
                    window_end: honest.window_end,
                    poa,
                }),
                setup.clock.now(),
            )
            .expect("registered drone")
            .verdict
    };

    // 1. Pre-computed route: sign a fake trace with the operator's own key.
    let attacker_key = RsaPrivateKey::generate(512, &mut rng);
    let forged: ProofOfAlibi = honest
        .poa
        .alibi()
        .iter()
        .map(|s| {
            let sig = attacker_key.sign(&s.to_bytes(), HashAlg::Sha1).unwrap();
            SignedSample::from_parts(*s, sig, HashAlg::Sha1)
        })
        .collect();
    let verdict = submit(&auditor, forged);
    println!("pre-computed route:     {verdict}");
    assert!(matches!(verdict, Verdict::BadSignature { .. }));

    // 2. Tamper: shift one genuine sample 200 m south (away from the zone).
    let mut entries: Vec<SignedSample> = honest.poa.entries().to_vec();
    let idx = entries.len() / 2;
    let shifted = GpsSample::new(
        entries[idx]
            .sample()
            .point()
            .destination(180.0, Distance::from_meters(200.0)),
        entries[idx].sample().time(),
    );
    entries[idx] =
        SignedSample::from_parts(shifted, entries[idx].signature().to_vec(), HashAlg::Sha1);
    let verdict = submit(&auditor, ProofOfAlibi::from_entries(entries));
    println!("tampered sample:        {verdict}");
    assert!(matches!(verdict, Verdict::BadSignature { .. }));

    // 3. Replay: append an old signed sample to the end of the trace.
    let mut entries: Vec<SignedSample> = honest.poa.entries().to_vec();
    entries.push(entries[0].clone());
    let verdict = submit(&auditor, ProofOfAlibi::from_entries(entries));
    println!("replayed sample:        {verdict}");
    assert!(matches!(verdict, Verdict::NonMonotonic { .. }));

    // 4. Relay: a second drone's TEE signs the same route; the first
    //    drone submits it as its own.
    let other = drone(&mut rng, pad, 800.0)?;
    let mut other_operator =
        DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), other.tee.clone());
    other_operator.register_with(&auditor);
    let other_flight = other_operator.fly(
        &other.clock,
        other.receiver.as_ref(),
        &auditor.zone_set(),
        SamplingStrategy::Adaptive,
        alidrone::geo::Duration::from_secs(59.0),
    )?;
    let verdict = submit(&auditor, other_flight.poa.clone());
    println!("relayed PoA:            {verdict}");
    assert!(matches!(verdict, Verdict::BadSignature { .. }));

    // 5. Omission: drop the middle of the honest trace (the part that
    //    proves the drone stayed beside the zone).
    let entries: Vec<SignedSample> = honest
        .poa
        .entries()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < 2 || *i + 2 >= honest.poa.len())
        .map(|(_, e)| e.clone())
        .collect();
    let verdict = submit(&auditor, ProofOfAlibi::from_entries(entries));
    println!("omitted samples:        {verdict}");
    assert!(matches!(verdict, Verdict::InsufficientAlibi { .. }));

    // 6. Actual violation: fly straight through the zone and submit the
    //    honest trace of that flight.
    let violating_start = pad.destination(0.0, Distance::from_meters(100.0));
    let bad = drone(&mut rng, violating_start, 800.0)?;
    let mut bad_operator =
        DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), bad.tee.clone());
    bad_operator.register_with(&auditor);
    let bad_flight = bad_operator.fly(
        &bad.clock,
        bad.receiver.as_ref(),
        &auditor.zone_set(),
        SamplingStrategy::FixedRate(5.0),
        alidrone::geo::Duration::from_secs(59.0),
    )?;
    let report = bad_operator.submit(&auditor, &bad_flight, bad.clock.now())?;
    println!("actual violation:       {}", report.verdict);
    assert!(matches!(report.verdict, Verdict::InsideZone { .. }));

    println!("\nevery attack detected; only the honest compliant flight was accepted.");
    Ok(())
}
