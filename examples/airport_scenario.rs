//! Field study 1 (paper §VI-A2): driving away from a 5-mile airport NFZ.
//!
//! Reproduces the Fig. 6 experiment through the example API rather than
//! the experiment harness: builds the scenario, runs 1 Hz fixed-rate and
//! adaptive sampling, and shows the sample-count gap and where the
//! adaptive samples concentrate.
//!
//! Run: `cargo run --release --example airport_scenario`

use std::error::Error;

use alidrone::core::SamplingStrategy;
use alidrone::sim::metrics::fig6_series;
use alidrone::sim::runner::{experiment_key, run_scenario};
use alidrone::sim::scenarios::airport;
use alidrone::tee::CostModel;

fn main() -> Result<(), Box<dyn Error>> {
    let scenario = airport();
    println!(
        "airport scenario: NFZ radius {:.0} mi, drive {:.0} s at 1 Hz GPS",
        scenario.zones.iter().next().unwrap().radius().miles(),
        scenario.duration.secs()
    );

    let fixed = run_scenario(
        &scenario,
        SamplingStrategy::FixedRate(1.0),
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )?;
    let adaptive = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )?;

    println!(
        "\n1 Hz fixed-rate : {:4} samples, {} signatures, {:.1} s modelled CPU",
        fixed.sample_count(),
        fixed.ledger.snapshot().signatures,
        fixed.ledger.snapshot().busy.secs()
    );
    println!(
        "adaptive        : {:4} samples, {} signatures, {:.2} s modelled CPU",
        adaptive.sample_count(),
        adaptive.ledger.snapshot().signatures,
        adaptive.ledger.snapshot().busy.secs()
    );
    println!(
        "reduction       : {:.1}x fewer samples (paper: 649 → 14, 46x)",
        fixed.sample_count() as f64 / adaptive.sample_count() as f64
    );

    // Where do the adaptive samples land?
    println!("\nadaptive sample positions (distance to NFZ boundary):");
    let series = fig6_series(&adaptive.record);
    let mut last = 0usize;
    for p in &series {
        if p.cumulative_samples > last {
            last = p.cumulative_samples;
            println!("  sample {last:2} at {:8.0} ft", p.distance_ft);
        }
    }
    println!("\ngaps grow geometrically with distance — exactly the Fig. 6 shape.");
    Ok(())
}
