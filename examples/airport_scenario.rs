//! Field study 1 (paper §VI-A2): driving away from a 5-mile airport NFZ.
//!
//! Reproduces the Fig. 6 experiment through the example API rather than
//! the experiment harness: builds the scenario, runs 1 Hz fixed-rate and
//! adaptive sampling, and shows the sample-count gap and where the
//! adaptive samples concentrate. The adaptive run's observability
//! handle is then shared with a wire-level auditor server, and the
//! combined metrics snapshot — request latencies by request type, world
//! switches, signature counts by key size, sampler rate-change events —
//! is printed as JSON.
//!
//! Run: `cargo run --release --example airport_scenario`

use std::error::Error;

use alidrone::core::wire::server::AuditorServer;
use alidrone::core::wire::transport::{AuditorClient, InProcess};
use alidrone::core::{Auditor, AuditorConfig, SamplingStrategy, Verdict};
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::Timestamp;
use alidrone::obs::{Json, ToJson};
use alidrone::sim::metrics::fig6_series;
use alidrone::sim::report::render_metrics;
use alidrone::sim::runner::{experiment_key, run_scenario};
use alidrone::sim::scenarios::airport;
use alidrone::tee::CostModel;

fn main() -> Result<(), Box<dyn Error>> {
    let scenario = airport();
    println!(
        "airport scenario: NFZ radius {:.0} mi, drive {:.0} s at 1 Hz GPS",
        scenario.zones.iter().next().unwrap().radius().miles(),
        scenario.duration.secs()
    );

    let fixed = run_scenario(
        &scenario,
        SamplingStrategy::FixedRate(1.0),
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )?;
    let adaptive = run_scenario(
        &scenario,
        SamplingStrategy::Adaptive,
        experiment_key(),
        CostModel::raspberry_pi_3(),
    )?;

    println!(
        "\n1 Hz fixed-rate : {:4} samples, {} signatures, {:.1} s modelled CPU",
        fixed.sample_count(),
        fixed.ledger.snapshot().signatures,
        fixed.ledger.snapshot().busy.secs()
    );
    println!(
        "adaptive        : {:4} samples, {} signatures, {:.2} s modelled CPU",
        adaptive.sample_count(),
        adaptive.ledger.snapshot().signatures,
        adaptive.ledger.snapshot().busy.secs()
    );
    println!(
        "reduction       : {:.1}x fewer samples (paper: 649 → 14, 46x)",
        fixed.sample_count() as f64 / adaptive.sample_count() as f64
    );

    // Where do the adaptive samples land?
    println!("\nadaptive sample positions (distance to NFZ boundary):");
    let series = fig6_series(&adaptive.record);
    let mut last = 0usize;
    for p in &series {
        if p.cumulative_samples > last {
            last = p.cumulative_samples;
            println!("  sample {last:2} at {:8.0} ft", p.distance_ft);
        }
    }
    println!("\ngaps grow geometrically with distance — exactly the Fig. 6 shape.");

    // Submit the adaptive PoA over the wire. The server shares the
    // scenario run's obs handle, so wire latency histograms and error
    // counters land in the same registry as the TEE and sampler
    // metrics.
    let obs = adaptive.obs.clone();
    let mut rng = XorShift64::seed_from_u64(0xA1B0);
    let auditor_key = RsaPrivateKey::generate(512, &mut rng);
    let operator_key = RsaPrivateKey::generate(512, &mut rng);
    let server = std::sync::Arc::new(
        AuditorServer::builder(Auditor::new(AuditorConfig::default(), auditor_key))
            .obs(&obs)
            .build(),
    );
    let mut client = AuditorClient::new(InProcess::shared(server.clone(), &obs));

    let now = Timestamp::from_secs(scenario.duration.secs() + 60.0);
    let drone = client.register_drone(
        operator_key.public_key().clone(),
        adaptive.tee.tee_public_key(),
        now,
    )?;
    for zone in scenario.zones.iter() {
        client.register_zone(*zone, now)?;
    }
    let verdict = client.submit_poa(
        drone,
        (adaptive.record.window_start, adaptive.record.window_end),
        &adaptive.record.poa,
        now,
    )?;
    // Starting 30 ft from the boundary, the first pair cannot be
    // sufficient at any hardware rate (see the runner tests): the
    // auditor flags exactly those unavoidable initial pairs.
    println!("\nwire submission verdict: {verdict:?}");
    assert!(matches!(
        verdict,
        Verdict::Compliant | Verdict::InsufficientAlibi { .. }
    ));
    // One garbage frame, to show the malformed-frame accounting.
    let _ = server.handle(&[0xDE, 0xAD, 0xBE, 0xEF], now);

    println!("\nmetrics:\n{}", render_metrics(&obs.snapshot()));

    // The full snapshot plus the sampler's rate-change events, as JSON.
    let rate_changes: Vec<Json> = adaptive
        .events
        .iter()
        .filter(|e| e.message == "rate_change" || e.message == "anchor_sample")
        .map(|e| e.to_json())
        .collect();
    let doc = Json::obj([
        ("metrics", obs.snapshot().to_json()),
        ("sampler_events", Json::Arr(rate_changes)),
    ]);
    println!("metrics snapshot (JSON):\n{}", doc.to_pretty());
    Ok(())
}
