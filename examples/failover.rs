//! Replicated auditor failover: kill the primary, keep verifying.
//!
//! Boots a 1-primary / 2-follower [`Cluster`]: the primary write-ahead
//! journals every durable mutation and ships each record to both
//! followers, acknowledging only once a follower holds it durably
//! (`Quorum(1)`). Then the primary dies mid-flight:
//!
//! 1. registrations and a verified PoA land on the primary and
//!    replicate to both followers,
//! 2. the primary is killed; the most-caught-up follower is *fenced*
//!    (epoch bump) and finishes replaying the shipped log,
//! 3. the deposed primary's next write is rejected with a typed
//!    stale-epoch error — no split brain,
//! 4. the promoted primary keeps verifying PoAs, and the replication
//!    gauges read exactly zero lag once the survivor catches up.
//!
//! Run with: `cargo run --release --offline --example failover`

use alidrone::core::repl::{Cluster, ClusterConfig, ReplicationPolicy};
use alidrone::core::{Auditor, AuditorConfig, PoaSubmission, ProofOfAlibi, Submission};
use alidrone::crypto::rng::XorShift64;
use alidrone::crypto::rsa::{HashAlg, RsaPrivateKey};
use alidrone::geo::{Distance, GeoPoint, GpsSample, NoFlyZone, Timestamp};
use alidrone::obs::Obs;
use alidrone::tee::SignedSample;

fn key(seed: u64) -> RsaPrivateKey {
    RsaPrivateKey::generate(512, &mut XorShift64::seed_from_u64(seed))
}

fn pad() -> GeoPoint {
    GeoPoint::new(40.1164, -88.2434).expect("valid pad")
}

/// An honest alibi trace signed by the drone TEE key, starting at `t0`.
fn signed_samples(tee: &RsaPrivateKey, t0: f64, n: usize) -> Vec<SignedSample> {
    (0..n)
        .map(|i| {
            let sample = GpsSample::new(
                pad().destination(90.0, Distance::from_meters(10.0 * i as f64)),
                Timestamp::from_secs(t0 + i as f64),
            );
            let sig = tee.sign(&sample.to_bytes(), HashAlg::Sha1).expect("sign");
            SignedSample::from_parts(sample, sig, HashAlg::Sha1)
        })
        .collect()
}

fn submit(
    auditor: &Auditor,
    id: alidrone::core::DroneId,
    tee: &RsaPrivateKey,
    t0: f64,
) -> Result<String, Box<dyn std::error::Error>> {
    let outcome = auditor.verify(
        &Submission::plain(PoaSubmission {
            drone_id: id,
            window_start: Timestamp::from_secs(t0),
            window_end: Timestamp::from_secs(t0 + 2.0),
            poa: ProofOfAlibi::from_entries(signed_samples(tee, t0, 3)),
        }),
        Timestamp::from_secs(t0 + 10.0),
    )?;
    Ok(outcome.verdict.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = Obs::noop();
    let tee_key = key(0xD201);
    let operator_key = key(0x09E0);

    // ---- 1. A replicated cluster at epoch 1 --------------------------
    let mut cluster = Cluster::new(
        ClusterConfig {
            followers: 2,
            policy: ReplicationPolicy::Quorum(1),
        },
        AuditorConfig::default(),
        key(0xA0D1),
        &obs,
    )?;
    let primary = cluster.primary().clone();
    let id = primary.register_drone_durable(
        operator_key.public_key().clone(),
        tee_key.public_key().clone(),
    )?;
    primary.register_zone_durable(NoFlyZone::new(
        pad().destination(0.0, Distance::from_km(1.0)),
        Distance::from_meters(50.0),
    ))?;
    let verdict = submit(&primary, id, &tee_key, 0.0)?;
    println!(
        "epoch {}: drone {id} registered, first PoA verdict: {verdict}",
        cluster.epoch()
    );
    for (name, follower) in cluster.followers() {
        println!(
            "  follower {name}: {} records durable at offset {}",
            follower.record_count(),
            follower.acked_offset()
        );
    }
    let state_before_kill = primary.snapshot();

    // ---- 2. Kill the primary, promote a follower ---------------------
    let promoted = cluster.kill_and_promote(0)?;
    println!(
        "primary killed; follower promoted, now serving epoch {}",
        cluster.epoch()
    );
    assert_eq!(
        promoted.snapshot(),
        state_before_kill,
        "promoted state must be byte-identical to the primary's last \
         acknowledged state"
    );
    println!("  promoted state is byte-identical to the pre-kill state");

    // ---- 3. The deposed primary is fenced ----------------------------
    let err = primary
        .register_zone_durable(NoFlyZone::new(pad(), Distance::from_meters(10.0)))
        .expect_err("a deposed primary must not acknowledge writes");
    println!("  deposed primary rejected: {err}");

    // ---- 4. Verification continues on the new primary ----------------
    let verdict = submit(&promoted, id, &tee_key, 100.0)?;
    println!(
        "epoch {}: second PoA verdict on the promoted primary: {verdict}",
        cluster.epoch()
    );
    let snap = obs.snapshot();
    println!(
        "quiesced metrics: lag_bytes={} lag_records={} failovers={} epoch={}",
        snap.gauges["repl.lag_bytes"],
        snap.gauges["repl.lag_records"],
        snap.counter("repl.failovers"),
        snap.gauges["repl.epoch"],
    );
    assert_eq!(snap.gauges["repl.lag_bytes"], 0);
    assert_eq!(snap.counter("repl.failovers"), 1);
    Ok(())
}
