//! A delivery fleet under one auditor: several drones, several zone
//! owners, mixed sampling strategies — the "Amazon Prime Air" setting
//! the paper's introduction motivates.
//!
//! Also demonstrates the two performance extensions of §VII-A1:
//! per-flight symmetric keys (DH + HMAC) and batch trace signing.
//!
//! Run: `cargo run --release --example delivery_fleet`

use std::error::Error;
use std::sync::Arc;

use alidrone::core::symmetric::establish_flight_key;
use alidrone::core::{Auditor, AuditorConfig, DroneOperator, SamplingStrategy, ZoneOwner};
use alidrone::crypto::dh::DhGroup;
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, Duration, GeoPoint, NoFlyZone, Speed};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::{SecureWorldBuilder, GPS_SAMPLER_UUID};
use alidrone_crypto::rng::XorShift64;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(8);
    let depot = GeoPoint::new(40.1164, -88.2434)?;

    let auditor = Auditor::new(
        AuditorConfig::default(),
        RsaPrivateKey::generate(512, &mut rng),
    );

    // Three homeowners register zones in the delivery area.
    let mut owners: Vec<ZoneOwner> = [(800.0, 60.0), (1_500.0, 90.0), (2_200.0, 45.0)]
        .iter()
        .map(|&(east_m, north_m)| {
            ZoneOwner::new(NoFlyZone::new(
                depot
                    .destination(90.0, Distance::from_meters(east_m))
                    .destination(0.0, Distance::from_meters(north_m)),
                Distance::from_feet(25.0),
            ))
        })
        .collect();
    for o in &mut owners {
        o.register_with(&auditor);
    }
    println!("{} zones registered", owners.len());

    // Three delivery drones with different destinations and strategies.
    let deliveries = [
        ("alpha", 1_000.0, SamplingStrategy::Adaptive),
        ("bravo", 2_000.0, SamplingStrategy::Adaptive),
        ("charlie", 3_000.0, SamplingStrategy::FixedRate(2.0)),
    ];
    for (name, dist_m, strategy) in deliveries {
        let dest = depot.destination(90.0, Distance::from_meters(dist_m));
        let route = TrajectoryBuilder::start_at(depot)
            .travel_to(dest, Speed::from_mph(35.0))
            .pause(Duration::from_secs(10.0)) // drop the package
            .build()?;
        let flight_time = route.total_duration();
        let clock = SimClock::new();
        let receiver = Arc::new(SimulatedReceiver::from_trajectory(
            route,
            clock.clone(),
            5.0,
        ));
        let world = SecureWorldBuilder::new()
            .with_generated_key(512, &mut rng)
            .with_gps_device(Box::new(Arc::clone(&receiver)))
            .build()?;
        let mut operator =
            DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), world.client());
        let id = operator.register_with(&auditor);

        let zones = operator
            .query_zones(
                &auditor,
                depot.destination(225.0, Distance::from_km(4.0)),
                depot.destination(45.0, Distance::from_km(4.0)),
                &mut rng,
            )?
            .zone_set();

        let record = operator.fly(&clock, receiver.as_ref(), &zones, strategy, flight_time)?;
        let report = operator.submit_encrypted(&auditor, &record, clock.now(), &mut rng)?;
        println!(
            "{name:>8} ({id}): {:3} samples via {:<11} → {}",
            record.sample_count(),
            record.strategy,
            report.verdict
        );
        assert!(report.is_compliant());
    }

    // §VII-A1a — a fourth drone uses a per-flight symmetric key to avoid
    // per-sample RSA entirely.
    let (drone_session, auditor_session) = establish_flight_key(&DhGroup::test_512(), &mut rng)?;
    let sample = alidrone::geo::GpsSample::new(depot, alidrone::geo::Timestamp::from_secs(1.0));
    let mac_sample = drone_session.authenticate(sample);
    assert!(auditor_session.verify(&mac_sample));
    println!("\nsymmetric extension: per-flight HMAC key established and verified ✔");

    // §VII-A1b — batch signing: cache in secure memory, one RSA op total.
    let clock = SimClock::new();
    let route = TrajectoryBuilder::start_at(depot)
        .travel_to(
            depot.destination(0.0, Distance::from_meters(400.0)),
            Speed::from_mph(30.0),
        )
        .build()?;
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(
        route,
        clock.clone(),
        5.0,
    ));
    let world = SecureWorldBuilder::new()
        .with_generated_key(512, &mut rng)
        .with_gps_device(Box::new(Arc::clone(&receiver)))
        .build()?;
    let session = world.client().open_session(GPS_SAMPLER_UUID)?;
    for _ in 0..10 {
        clock.advance(Duration::from_secs(1.0));
        session.cache_sample()?;
    }
    let trace = session.sign_trace()?;
    trace.verify(&world.client().tee_public_key())?;
    println!(
        "batch extension: {} samples cached, 1 signature ({} total signatures in ledger) ✔",
        trace.samples().len(),
        world.ledger().snapshot().signatures
    );
    Ok(())
}
