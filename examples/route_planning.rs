//! Route planning around no-fly zones (paper §IV-B step 3): query the
//! auditor, plan a compliant detour, fly it, and prove compliance.
//!
//! Run: `cargo run --example route_planning`

use std::error::Error;
use std::sync::Arc;

use alidrone::core::{Auditor, AuditorConfig, DroneOperator, SamplingStrategy};
use alidrone::crypto::rsa::RsaPrivateKey;
use alidrone::geo::planner::route_is_clear;
use alidrone::geo::trajectory::TrajectoryBuilder;
use alidrone::geo::{Distance, GeoPoint, NoFlyZone, Speed};
use alidrone::gps::{SimClock, SimulatedReceiver};
use alidrone::tee::SecureWorldBuilder;
use alidrone_crypto::rng::XorShift64;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = XorShift64::seed_from_u64(12);
    let depot = GeoPoint::new(40.1164, -88.2434)?;
    let customer = depot.destination(90.0, Distance::from_km(2.0));

    // Three zones sit between depot and customer.
    let auditor = Auditor::new(
        AuditorConfig::default(),
        RsaPrivateKey::generate(512, &mut rng),
    );
    for (east_m, north_m, r_m) in [
        (600.0, 0.0, 70.0),
        (1_100.0, 60.0, 50.0),
        (1_500.0, -50.0, 60.0),
    ] {
        auditor.register_zone(NoFlyZone::new(
            depot
                .destination(90.0, Distance::from_meters(east_m))
                .destination(0.0, Distance::from_meters(north_m)),
            Distance::from_meters(r_m),
        ));
    }

    // Build the drone; query zones; plan.
    let world = SecureWorldBuilder::new().with_generated_key(512, &mut rng);
    let mut planning_world = world; // receiver attached after planning
    let zones_resp;
    {
        // Registration needs only the TEE public key, so a receiver-less
        // world suffices for the query phase.
        let tmp_world = SecureWorldBuilder::new()
            .with_generated_key(512, &mut rng)
            .build()?;
        let mut operator =
            DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), tmp_world.client());
        operator.register_with(&auditor);
        zones_resp = operator.query_zones(
            &auditor,
            depot.destination(225.0, Distance::from_km(3.0)),
            depot.destination(45.0, Distance::from_km(3.0)),
            &mut rng,
        )?;
    }
    let zones = zones_resp.zone_set();
    println!("auditor reports {} zones in the area", zones.len());

    let margin = Distance::from_meters(25.0);
    let route = alidrone::geo::planner::plan_route(depot, customer, &zones, margin)?;
    println!("planned route with {} waypoints:", route.len());
    for (i, wp) in route.iter().enumerate() {
        let d = depot.distance_to(wp);
        println!("  wp{i}: {} ({} from depot)", wp, d);
    }
    assert!(route_is_clear(&route, &zones, margin));
    println!("route keeps ≥ {margin} clearance from every zone ✔");

    // Fly the planned route with adaptive sampling and verify.
    let mut builder = TrajectoryBuilder::start_at(route[0]);
    for wp in &route[1..] {
        builder = builder.travel_to(*wp, Speed::from_mph(30.0));
    }
    let traj = builder.build()?;
    let flight_time = traj.total_duration();
    println!(
        "flight: {:.2} km over {:.0} s",
        traj.total_distance().km(),
        flight_time.secs()
    );

    let clock = SimClock::new();
    let receiver = Arc::new(SimulatedReceiver::from_trajectory(traj, clock.clone(), 5.0));
    planning_world = planning_world.with_gps_device(Box::new(Arc::clone(&receiver)));
    let world = planning_world.build()?;
    let mut operator = DroneOperator::new(RsaPrivateKey::generate(512, &mut rng), world.client());
    operator.register_with(&auditor);
    let record = operator.fly(
        &clock,
        receiver.as_ref(),
        &zones,
        SamplingStrategy::AdaptivePairwise,
        flight_time,
    )?;
    let report = operator.submit_encrypted(&auditor, &record, clock.now(), &mut rng)?;
    println!(
        "flew {} authenticated samples → auditor verdict: {}",
        record.sample_count(),
        report.verdict
    );
    // Note: this flight uses the pairwise-safe adaptive variant. The
    // paper's nearest-zone trigger leaves one insufficient pair at the
    // sharp waypoint turn between two zones (see EXPERIMENTS.md).
    assert!(report.is_compliant());
    Ok(())
}
